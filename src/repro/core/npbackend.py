"""Vectorized NumPy execution backend: segment reduction over the CSR trie.

The Python backend walks trie runs one at a time, paying interpreter cost
per distinct prefix; the C backend removes that cost but needs gcc. This
module is the portable middle ground: each :class:`MultiOutputPlan` is
lowered to a **staged array program** over the existing
:class:`~repro.data.trie.TrieIndex` level arrays, evaluating every plan
construct for *all* runs of a level at once:

* **run geometry** — per-level parent maps (``np.repeat`` over child-span
  widths), ancestor maps (parent composition) and subtree span starts
  (child-span composition) are derived once per index and cached on it;
* **probes** — incoming-view lookups become vectorized binary searches:
  each view's entries are key-coded per column (``np.searchsorted``
  against the per-column sorted uniques), combined into mixed-radix
  composite codes, and sorted once in ``prepare_bindings``; a probe then
  codes the bound level's key columns the same way and searches the sorted
  composites. Semi-join misses become a per-level **alive mask**, composed
  down the trie exactly like the generated ``continue`` cascades;
* **carried views** — incoming views whose group-by includes non-local
  attributes are flattened to **CSR entry lists** per local key
  (:class:`_CarriedTable`): entries stably sorted by their local-key
  composite code, ``entry_offsets`` bounding each key's contiguous
  segment in the flattened carried columns and aggregate matrix. A probe
  at the block's bind level yields a per-run key row (hence an entry
  segment) plus the semi-join found mask;
* **sub-sums** — ``SubSumTerm`` (Σ over a carried view's entries) is one
  ``np.add.reduceat`` over the entry segments per table, computed once at
  marshalling time and indexed per probed run;
* **γ prefix products** — per-level ``values``-array multiplies, broadcast
  down via ancestor maps in the same operand order as the generated code;
* **β running sums** — ``np.add.reduceat`` segment sums over the composed
  subtree spans, bottom-up per level (children of a chain first), with
  dead runs zeroed before reduction;
* **emissions** — aligned emissions materialise as masked
  ``(key columns, value matrix)`` pairs; hash emissions group runs by
  composite key codes and accumulate with ``np.bincount`` (which adds
  weights in input order — trie order, like the interpreted loop);
  **carried-keyed** emissions first expand surviving runs by their entry
  counts per keyed block (``np.repeat`` cross product, the vectorized
  form of the generated nested entry loops), gather key columns from trie
  levels and the flattened carried columns, then reuse the same grouping
  + ``bincount`` machinery. Aligned/hash outputs are converted to the
  engine's dict format at the boundary via
  :class:`~repro.core.runtime.ArrayViewData`, which keeps the columnar
  arrays alive for downstream NumPy consumers and the partition merge.

**Supported plans.** Every plan the decomposition layer can produce is
lowered — including carried blocks, float trie levels and float view keys
(both of which the C backend rejects). :func:`supports_plan` only retains
a defensive structural check, so with ``backend="numpy"`` the engine runs
whole batches natively with no per-group fallback class left.

**Bit-exactness contract vs the Python backend.** Operand order of every
product and the per-key accumulation order of every hash emission match
the generated Python statement for statement — carried expansions
enumerate (run, entry…) pairs in trie × entry-list order, exactly like
the generated nested loops — and on integer-valued data (where float64
arithmetic is exact) results are bit-identical — the property grid in
``tests/core/test_parallel_properties.py`` asserts dict equality,
carried plans included. On non-integral float data, segment sums may
reassociate (``np.add.reduceat`` uses blocked summation), so results
agree only up to the usual ~1 ulp reduction drift; scalar conversion at
the boundary means pure-count aggregates are exact up to 2**53 rather
than arbitrary precision.

**Concurrency.** Execution touches only per-call state plus read-only
inputs (trie arrays, prepared binding tables), so the engine's
domain-parallel mode can run partitions of one group concurrently; NumPy
releases the GIL inside large array kernels, giving partial multicore
scaling without gcc.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.core import costmodel
from repro.core.lowering import (
    MODE_ALIGNED,
    MODE_SCALAR,
    LoweredEmission,
    LoweredPlan,
    lower_plan,
)
from repro.core.plan import (
    CountTerm,
    Emission,
    EmissionSlot,
    FactorTerm,
    MultiOutputPlan,
    RowSumTerm,
    SubSumTerm,
    Term,
    ViewBinding,
    ViewTerm,
)
from repro.core.runtime import (
    ArrayViewData,
    _product_column,
    _product_signature,
    debug_checks_enabled,
)
from repro.data.trie import TrieIndex
from repro.query.functions import Function
from repro.util.errors import PlanError

#: composite key codes stay below this in int64; beyond it the (rare) huge
#: multi-column key spaces switch to exact Python-int (object) codes.
_CODE_LIMIT = 2**62


def supports_plan(plan: MultiOutputPlan) -> bool:
    """Whether the NumPy backend can execute ``plan`` — effectively always.

    Carried blocks are lowered since the CSR entry-list expansion landed,
    so no structural plan feature forces the Python backend any more.
    What remains is one defensive check: a binding with an empty key
    would bind at level -1, which the generated backends never emit
    probes for either (and the planning layer never produces).
    """
    return all(binding.bind_level >= 0 for binding in plan.bindings)


def compile_numpy_groups(
    plans: Sequence[MultiOutputPlan], adaptive: bool = True
) -> list:
    """Per-plan NumPy implementations (None = fall back to Python)."""
    return [
        NumpyCompiledGroup(plan, adaptive=adaptive) if supports_plan(plan) else None
        for plan in plans
    ]


# ---------------------------------------------------------------------------
# incoming-view binding tables
# ---------------------------------------------------------------------------


def _composite(codes: list[np.ndarray], bases: list[int], as_object: bool) -> np.ndarray:
    """Mixed-radix combination of per-column codes (``code[p] < bases[p]``)."""
    comp: np.ndarray | None = None
    for code, base in zip(codes, bases):
        piece = code.astype(object) if as_object else code.astype(np.int64)
        comp = piece if comp is None else comp * base + piece
    assert comp is not None
    return comp


def _view_arrays(
    group_by: tuple[str, ...], width: int, data: dict
) -> tuple[list[np.ndarray], np.ndarray]:
    """One incoming view as parallel key columns + float64 values matrix.

    Columns come back in the producer's canonical group-by order; row
    order is the producer's dict order (the order the interpreted entry
    lists iterate). ``ArrayViewData`` inputs with live columnar state
    skip the dict-to-array conversion entirely.
    """
    if isinstance(data, ArrayViewData) and data.has_columns:
        if debug_checks_enabled():
            data.check_consistent()
        return (
            [np.asarray(column) for column in data.key_columns],
            np.asarray(data.value_matrix, dtype=np.float64),
        )
    m = len(data)
    if m == 0:
        empty = [np.empty(0, dtype=np.int64) for _ in group_by]
        return empty, np.zeros((0, width), dtype=np.float64)
    keys = np.asarray(list(data.keys())).reshape(m, len(group_by))
    values = np.asarray(list(data.values()), dtype=np.float64).reshape(m, width)
    return (
        [np.ascontiguousarray(keys[:, p]) for p in range(len(group_by))],
        values,
    )


class _ProbeTable:
    """Key coding shared by the scalar and carried binding tables.

    Entry key columns are coded per column against their sorted uniques
    and combined into mixed-radix composite codes; a probe codes the
    bound trie level's columns the same way (values absent from the
    producer take the reserved top code, keeping composites
    collision-free) so a lookup is two ``np.searchsorted`` passes.
    """

    part_uniques: list[np.ndarray]
    bases: list[int]
    as_object: bool

    def _build_codes(self, columns: list[np.ndarray]) -> np.ndarray:
        self.part_uniques = [np.unique(column) for column in columns]
        # base = len(uniques) + 1 reserves the top code for "not a producer
        # value" on the probe side.
        self.bases = [len(uniques) + 1 for uniques in self.part_uniques]
        span = 1
        for base in self.bases:
            span *= base
        self.as_object = span >= _CODE_LIMIT
        codes = [
            np.searchsorted(uniques, column)
            for uniques, column in zip(self.part_uniques, columns)
        ]
        if not codes:  # cannot happen: bindings always have ≥ 1 key attr
            return np.zeros(0, dtype=np.int64)
        return _composite(codes, self.bases, self.as_object)

    def _probe_codes(
        self, probe_columns: list[np.ndarray]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Composite code + per-run validity for the probing level columns.

        Only called with ≥ 1 producer entry, so every ``uniques`` array is
        non-empty.
        """
        n = len(probe_columns[0])
        found = np.ones(n, dtype=bool)
        codes = []
        for uniques, column in zip(self.part_uniques, probe_columns):
            pos = np.searchsorted(uniques, column)
            clipped = np.minimum(pos, len(uniques) - 1)
            valid = uniques[clipped] == column
            found &= valid
            codes.append(np.where(valid, clipped, len(uniques)))
        return _composite(codes, self.bases, self.as_object), found


class _BindingTable(_ProbeTable):
    """One scalar (non-carried) incoming view marshalled for probing.

    Key columns are selected in the consumer binding's key order, coded,
    combined and sorted once; a probe is then two ``np.searchsorted``
    passes. The table is read-only after construction and shared across
    partitions.
    """

    def __init__(self, binding: ViewBinding, group_by: tuple[str, ...], data: dict):
        self.width = binding.num_aggregates
        columns, values = _view_arrays(group_by, self.width, data)
        positions = [group_by.index(attr) for attr in binding.key]
        self.m = len(values)
        self.values = values
        comp = self._build_codes([columns[p] for p in positions])
        self.order = np.argsort(comp, kind="stable")
        self.sorted_comp = comp[self.order]

    def probe(self, probe_columns: list[np.ndarray]) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized lookup: ``(values matrix, found mask)`` per run.

        Missing keys yield ``found=False`` with an arbitrary (but
        in-bounds) values row — callers mask dead runs out of every sum.
        """
        n = len(probe_columns[0])
        if self.m == 0:
            return (
                np.zeros((n, self.width), dtype=np.float64),
                np.zeros(n, dtype=bool),
            )
        comp, found = self._probe_codes(probe_columns)
        idx = np.minimum(np.searchsorted(self.sorted_comp, comp), self.m - 1)
        found &= self.sorted_comp[idx] == comp
        rows = self.order[np.where(found, idx, 0)]
        return self.values[rows], found


class _CarriedTable(_ProbeTable):
    """One carried incoming view flattened to CSR entry lists.

    Entries (producer rows) are stably sorted by their local-key
    composite code, giving one contiguous segment per distinct local key:
    ``entry_offsets[i] : entry_offsets[i + 1]`` bounds key row ``i``'s
    entries in the flattened ``carried_columns`` (one array per carried
    attribute, in entry-tuple order) and ``agg_matrix``. Stability keeps
    entries in producer-dict order within each key — the order the
    interpreted entry lists iterate, so carried accumulations stay
    statement-compatible. ``subsums`` holds Σ over each key's entries of
    every aggregate (one ``np.add.reduceat`` per table), which makes a
    :class:`~repro.core.plan.SubSumTerm` read a per-run gather.
    """

    def __init__(self, binding: ViewBinding, group_by: tuple[str, ...], data: dict):
        self.width = binding.num_aggregates
        columns, values = _view_arrays(group_by, self.width, data)
        key_positions = [group_by.index(attr) for attr in binding.key]
        carried_positions = [group_by.index(attr) for attr in binding.carried]
        self.m = len(values)
        comp = self._build_codes([columns[p] for p in key_positions])
        order = np.argsort(comp, kind="stable")
        sorted_comp = comp[order]
        if self.m:
            is_start = np.ones(self.m, dtype=bool)
            is_start[1:] = sorted_comp[1:] != sorted_comp[:-1]
            starts = np.flatnonzero(is_start)
        else:
            starts = np.zeros(0, dtype=np.int64)
        self.num_keys = len(starts)
        self.key_comp = sorted_comp[starts] if self.m else sorted_comp
        self.entry_offsets = np.append(starts, self.m).astype(np.int64)
        self.carried_columns = [columns[p][order] for p in carried_positions]
        self.agg_matrix = values[order]
        if self.num_keys:
            self.subsums = np.add.reduceat(self.agg_matrix, starts, axis=0)
        else:
            self.subsums = np.zeros((0, self.width), dtype=np.float64)

    def probe(self, probe_columns: list[np.ndarray]) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized fetch: ``(key row, found mask)`` per run.

        ``key row`` indexes the per-key arrays (``entry_offsets`` /
        ``subsums``); misses yield ``found=False`` with an arbitrary
        in-bounds row, masked out downstream like scalar probe misses.
        """
        n = len(probe_columns[0])
        if self.num_keys == 0:
            return np.zeros(n, dtype=np.int64), np.zeros(n, dtype=bool)
        comp, found = self._probe_codes(probe_columns)
        idx = np.minimum(np.searchsorted(self.key_comp, comp), self.num_keys - 1)
        found &= self.key_comp[idx] == comp
        return np.where(found, idx, 0), found

    def subsum(self, key_row: np.ndarray, found: np.ndarray, agg_index: int):
        """Σ over the probed key's entries of one aggregate, per run."""
        if self.num_keys == 0:
            return np.zeros(len(key_row), dtype=np.float64)
        return np.where(found, self.subsums[key_row, agg_index], 0.0)

    def entry_ranges(
        self, key_row: np.ndarray, found: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-run entry segment ``(start, count)``; count 0 where dead."""
        if self.num_keys == 0:
            zeros = np.zeros(len(key_row), dtype=np.int64)
            return zeros, zeros
        starts = self.entry_offsets[key_row]
        counts = np.where(found, self.entry_offsets[key_row + 1] - starts, 0)
        return starts, counts


# ---------------------------------------------------------------------------
# plan evaluation
# ---------------------------------------------------------------------------


def _dense_codes(column: np.ndarray) -> tuple[np.ndarray, int]:
    """Non-negative int codes for one key column, plus the code space size.

    Integer columns whose value range is modest relative to their length
    (the common case: categorical keys) take the sort-free offset path;
    floats and wild integer ranges fall back to ``np.unique``'s sort.
    """
    if column.dtype.kind in "iu" and len(column):
        lo = int(column.min())
        span = int(column.max()) - lo + 1
        if span <= max(4 * len(column), 1024):
            return column.astype(np.int64) - lo, span
    uniques, inverse = np.unique(column, return_inverse=True)
    return inverse.astype(np.int64), max(len(uniques), 1)


def _composite_codes(
    columns: list[np.ndarray],
) -> tuple[np.ndarray | None, int, int]:
    """Mixed-radix composite code per row: ``(comp, space, n)``.

    Per-column codes combine in mixed radix; when a radix step would
    overflow int64 the running composite is re-densified first. The
    composite is **order-preserving**: both per-column code paths in
    :func:`_dense_codes` map larger values to larger codes, so rows
    ordered by composite are ordered lexicographically by key tuple —
    which is why the hash and sort groupers below enumerate groups in
    the same order.
    """
    n = len(columns[0]) if columns else 0
    comp: np.ndarray | None = None
    space = 1
    for column in columns:
        codes, card = _dense_codes(column)
        if comp is None:
            comp, space = codes, card
            continue
        if space * card >= _CODE_LIMIT:
            # re-densify so the next radix step cannot overflow int64
            uniques, comp = np.unique(comp, return_inverse=True)
            comp = comp.astype(np.int64)
            space = max(len(uniques), 1)
        comp = comp * card + codes
        space *= card
    return comp, space, n


def _group_codes(columns: list[np.ndarray]) -> tuple[np.ndarray, int, np.ndarray]:
    """Group rows by their key tuple: ``(ids, num_keys, first_index)``.

    ``ids`` is a dense group id per row; ``first_index`` the first row of
    each group (so representative key values are ``column[first_index]``).
    When the combined code space stays modest the distinct codes are
    found with an O(n) bincount presence scan instead of a sort.
    """
    comp, space, n = _composite_codes(columns)
    if comp is None or n == 0:
        return np.zeros(0, dtype=np.int64), 0, np.zeros(0, dtype=np.int64)
    if space <= max(4 * n, 1024):
        present = np.bincount(comp, minlength=space) > 0
        num_keys = int(present.sum())
        ids = (np.cumsum(present) - 1)[comp]
    else:
        _, ids = np.unique(comp, return_inverse=True)
        ids = ids.astype(np.int64)
        num_keys = int(ids.max()) + 1
    # reversed scatter: for duplicate ids the *last* write wins, which in
    # reversed row order is each group's first occurrence.
    first_index = np.empty(num_keys, dtype=np.int64)
    first_index[ids[::-1]] = np.arange(n - 1, -1, -1, dtype=np.int64)
    return ids, num_keys, first_index


def _sorted_group_codes(
    columns: list[np.ndarray],
) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """Sort-based grouping: ``(order, starts, first_index, num_keys)``.

    ``order`` is the stable argsort of the composite codes, ``starts``
    the group boundaries within the sorted permutation. Stability keeps
    rows in original (trie) order within each group, so ``order[starts]``
    is each group's first occurrence and segment sums add in the same
    per-key order as the hash grouper's bincount — on integer-valued
    data the two paths are bit-identical, group order included (both
    enumerate groups by ascending composite code).

    The permutation comes from a **packed value sort** when it fits:
    ``sort(comp * n + row_index)`` recovers a stable order via divmod,
    and NumPy sorts raw int64 values several times faster than it
    argsorts them — this is what makes the sort path competitive with
    the hash grouper's ``np.unique`` fallback on nearly-unique keys.
    """
    comp, space, n = _composite_codes(columns)
    if comp is None or n == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty, empty, 0
    if space < _CODE_LIMIT // max(n, 1):
        packed = np.sort(comp * n + np.arange(n, dtype=np.int64))
        order = packed % n
        sorted_comp = packed // n
    else:
        order = np.argsort(comp, kind="stable")
        sorted_comp = comp[order]
    is_start = np.ones(n, dtype=bool)
    is_start[1:] = sorted_comp[1:] != sorted_comp[:-1]
    starts = np.flatnonzero(is_start)
    return order, starts, order[starts], len(starts)


class _HashGrouper:
    """Dense-code grouping: per-key sums scatter via ``np.bincount``."""

    strategy = costmodel.STRATEGY_HASH

    def __init__(self, ids: np.ndarray, num_keys: int, first_index: np.ndarray):
        self.ids = ids
        self.num_keys = num_keys
        self.first_index = first_index

    @classmethod
    def build(cls, columns: list[np.ndarray]) -> "_HashGrouper":
        return cls(*_group_codes(columns))

    def accumulate(self, values: np.ndarray) -> np.ndarray:
        return np.bincount(self.ids, weights=values, minlength=self.num_keys)

    def fired(self, mask: np.ndarray) -> np.ndarray:
        return np.bincount(self.ids[mask], minlength=self.num_keys) > 0


class _SortGrouper:
    """Sort-based grouping: per-key sums gather via ``np.add.reduceat``
    over the argsorted permutation — the cost model picks this when keys
    are nearly unique and dense-code scatter degenerates."""

    strategy = costmodel.STRATEGY_SORT

    def __init__(self, order: np.ndarray, starts: np.ndarray,
                 first_index: np.ndarray, num_keys: int):
        self.order = order
        self.starts = starts
        self.num_keys = num_keys
        self.first_index = first_index

    @classmethod
    def build(cls, columns: list[np.ndarray]) -> "_SortGrouper":
        return cls(*_sorted_group_codes(columns))

    def accumulate(self, values: np.ndarray) -> np.ndarray:
        if self.num_keys == 0:
            return np.zeros(0, dtype=np.float64)
        return np.add.reduceat(values[self.order], self.starts)

    def fired(self, mask: np.ndarray) -> np.ndarray:
        if self.num_keys == 0:
            return np.zeros(0, dtype=bool)
        return (
            np.add.reduceat(
                mask[self.order].astype(np.float64), self.starts
            )
            > 0
        )


def _make_grouper(columns: list[np.ndarray], strategy: str):
    if strategy == costmodel.STRATEGY_SORT:
        return _SortGrouper.build(columns)
    return _HashGrouper.build(columns)


class _PlanEvaluation:
    """One execution of a plan over one trie: the staged array program.

    Stages run in dependency order — probes (alive masks + probed view
    matrices + carried key rows), γ products (parents before children:
    plan order), β segment sums (deepest level first, so chain children
    precede their parents), then emissions. All per-run intermediates
    live only for this call; run-geometry arrays are cached on the trie
    across calls.
    """

    def __init__(
        self,
        plan: MultiOutputPlan,
        trie: TrieIndex,
        tables: Mapping[str, object],
        functions: Mapping[str, Function],
        lowered: LoweredPlan | None = None,
        strategies: Mapping[str, str] | None = None,
    ) -> None:
        self.plan = plan
        self.trie = trie
        self.tables = tables
        self.functions = functions
        self.lowered = lowered if lowered is not None else lower_plan(plan)
        #: per-artifact grouping strategy ('hash' | 'sort') from the cost
        #: model; None / missing artifact = hash (the static default).
        self.strategies = strategies or {}
        self.num_rel = len(plan.relation_levels)
        self.cache = trie._np_cache
        self._terms: dict[tuple, object] = {}
        self._alive: list[np.ndarray | None] = [None] * self.num_rel
        self._probed: dict[str, np.ndarray] = {}
        #: carried block index -> (key_row, found) at the block's bind level
        self._carried: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        #: (block, level) -> per-run entry (start, count) at that level
        self._entry_geo: dict[tuple[int, int], tuple[np.ndarray, np.ndarray]] = {}
        self._gamma: dict[int, object] = {}
        self._beta: dict[int, object] = {}
        self._gamma_level = {node.id: node.level for node in plan.gammas}

    # ------------------------------------------------------------ run geometry
    def runs(self, k: int) -> int:
        return self.trie.level(k).num_runs

    def level_values(self, k: int) -> np.ndarray:
        return self.trie.level(k).values

    def parent(self, k: int) -> np.ndarray:
        """Level-(k-1) run index containing each level-k run."""
        key = ("parent", k)
        got = self.cache.get(key)
        if got is None:
            lvl = self.trie.level(k - 1)
            got = np.repeat(
                np.arange(lvl.num_runs, dtype=np.int64),
                lvl.child_end - lvl.child_start,
            )
            self.cache[key] = got
        return got

    def ancestors(self, j: int, k: int) -> np.ndarray:
        """Level-j ancestor run index for each level-k run (j < k)."""
        key = ("anc", j, k)
        got = self.cache.get(key)
        if got is None:
            if j == k - 1:
                got = self.parent(k)
            else:
                got = self.ancestors(j, k - 1)[self.parent(k)]
            self.cache[key] = got
        return got

    def span_starts(self, j: int, k: int) -> np.ndarray:
        """Start of each level-j run's contiguous span of level-k runs.

        Subtree spans are non-empty (every run has ≥ 1 child) and tile
        ``[0, runs(k))`` in order, so these starts are exactly the
        ``np.add.reduceat`` segment boundaries for reducing level-k values
        to level j.
        """
        key = ("span", j, k)
        got = self.cache.get(key)
        if got is None:
            child_start = self.trie.level(j).child_start
            if j == k - 1:
                got = child_start
            else:
                got = self.span_starts(j + 1, k)[child_start]
            self.cache[key] = got
        return got

    def down(self, value, j: int, k: int):
        """Broadcast a level-j per-run value (or a scalar) to level k."""
        if j == k or not isinstance(value, np.ndarray):
            return value
        return value[self.ancestors(j, k)]

    def full(self, value, k: int) -> np.ndarray:
        """A scalar (level -1 value) as a constant array over level k."""
        if isinstance(value, np.ndarray):
            return value
        return np.full(self.runs(k), float(value))

    # ----------------------------------------------------------------- stages
    def term_value(self, term: Term):
        """The term's per-run array at its own level (scalar at level -1)."""
        got = self._terms.get(term.sig)
        if got is not None:
            return got
        if isinstance(term, FactorTerm):
            func = self.functions.get(term.func_name)
            if func is None:
                raise PlanError(
                    f"no runtime function registered for {term.func_name!r}"
                )
            # trie caches key on the *bound* function's name so re-bound
            # predicate constants (PlanBinding) never collide on a shared
            # index — see runtime._product_signature
            got = self.trie.level_function_array(
                term.level, f"{func.name}({term.attr})", func
            )
        elif isinstance(term, ViewTerm):
            got = self._probed[term.view][:, term.agg_index]
        elif isinstance(term, SubSumTerm):
            # per-run at the block's bind level (== term.level): the
            # carried probe already resolved each run to its key row
            key_row, found = self._carried[term.block]
            got = self.tables[term.view].subsum(key_row, found, term.agg_index)
        elif isinstance(term, (CountTerm, RowSumTerm)):
            # pure trie functions: cache the materialised run arrays on
            # the index, like the factor arrays and prefix-sum registers.
            # RowSumTerm keys resolve plan slot names to the bound
            # functions' own names (term.sig carries slot names, which a
            # PlanBinding may re-bind per request on this shared index)
            if isinstance(term, RowSumTerm):
                key = ("term", "r", term.level,
                       _product_signature(term.product, self.functions))
            else:
                key = ("term",) + term.sig
            got = self.cache.get(key)
            if got is None:
                if isinstance(term, CountTerm):
                    if term.level < 0:
                        got = float(self.trie.num_rows)
                    else:
                        lvl = self.trie.level(term.level)
                        got = (lvl.row_end - lvl.row_start).astype(np.float64)
                else:
                    psum = self.trie.prefix_sum(
                        _product_signature(term.product, self.functions),
                        _product_column(term.product, self.functions),
                    )
                    if term.level < 0:
                        got = float(psum[-1])
                    else:
                        lvl = self.trie.level(term.level)
                        got = psum[lvl.row_end] - psum[lvl.row_start]
                self.cache[key] = got
        else:  # pragma: no cover - exhaustive over the Term union
            raise PlanError(f"numpy backend cannot evaluate term {term!r}")
        self._terms[term.sig] = got
        return got

    def _run_probes(self) -> None:
        """Alive masks, probed view matrices and carried key rows, per level.

        The generated code ``continue``s out of a run's whole subtree on a
        probe miss — scalar lookup or carried entry-list fetch alike; here
        that is the alive mask — local found masks ANDed with the parent
        level's mask mapped down. ``None`` means all runs alive (no probes
        at or above the level)."""
        mask: np.ndarray | None = None
        for k in range(self.num_rel):
            if mask is not None:
                mask = mask[self.parent(k)]
            for binding in self.lowered.level(k).probes:
                columns = [
                    self.full(self.down(self.level_values(j), j, k), k)
                    for j in binding.key_levels
                ]
                if binding.is_carried:
                    key_row, found = self.tables[binding.view].probe(columns)
                    self._carried[binding.block] = (key_row, found)
                else:
                    values, found = self.tables[binding.view].probe(columns)
                    self._probed[binding.view] = values
                mask = found if mask is None else mask & found
            self._alive[k] = mask

    def _run_gammas(self) -> None:
        for node in self.plan.gammas:  # ids ascend: parents come first
            value = None
            if node.parent is not None:
                value = self.down(
                    self._gamma[node.parent],
                    self._gamma_level[node.parent],
                    node.level,
                )
            for term in node.terms:
                piece = self.down(self.term_value(term), term.level, node.level)
                value = piece if value is None else value * piece
            self._gamma[node.id] = value

    def _run_betas(self) -> None:
        # Deepest levels first (LoweredPlan.beta_order): a chain's child
        # (strictly deeper) is reduced to its reset level — the parent's
        # level — before the parent multiplies it in, mirroring the
        # nested loop tails.
        for node in self.lowered.beta_order:
            k = node.level
            value = None
            for term in node.terms:
                piece = self.down(self.term_value(term), term.level, k)
                value = piece if value is None else value * piece
            if node.child is not None:
                child = self._beta[node.child]  # per-run at k (reset == k)
                value = child if value is None else value * child
            value = self.full(value, k)
            mask = self._alive[k]
            if mask is not None:
                value = np.where(mask, value, 0.0)
            self._beta[node.id] = self._segment_sum(value, k, node.reset_level)

    def _segment_sum(self, value: np.ndarray, k: int, reset: int):
        if len(value) == 0:
            return 0.0 if reset < 0 else np.zeros(self.runs(reset))
        if reset < 0:
            return float(np.add.reduceat(value, np.array([0]))[0])
        return np.add.reduceat(value, self.span_starts(reset, k))

    # -------------------------------------------------------------- emissions
    def _emission_mask(self, k: int, support: int | None) -> np.ndarray | None:
        mask = self._alive[k]
        if support is not None:
            positive = self.full(self._beta[support], k) > 0
            mask = positive if mask is None else mask & positive
        return mask

    def _key_columns(self, key_parts, k: int) -> list[np.ndarray]:
        return [
            self.full(self.down(self.level_values(part.level), part.level, k), k)
            for part in key_parts
        ]

    def _slot_columns(self, slots: Sequence[EmissionSlot], k: int) -> list[np.ndarray]:
        columns = []
        for slot in slots:
            value = None
            if slot.gamma is not None:
                value = self.down(
                    self._gamma[slot.gamma], self._gamma_level[slot.gamma], k
                )
            if slot.beta is not None:
                beta = self._beta[slot.beta]  # per-run at k (reset == k)
                value = beta if value is None else value * beta
            if value is None:
                value = 1.0
            columns.append(self.full(value, k))
        return columns

    def _scalar_output(self, emission: Emission) -> dict:
        values = []
        for slot in emission.slots:
            value = None
            if slot.gamma is not None:
                value = self._gamma[slot.gamma]
            if slot.beta is not None:
                beta = self._beta[slot.beta]
                value = beta if value is None else value * beta
            values.append(1.0 if value is None else float(value))
        return {(): values}

    def _aligned_output(self, emission: Emission) -> ArrayViewData:
        first = emission.slots[0]
        k = first.level
        mask = self._emission_mask(k, first.support)
        keys = self._key_columns(first.key_parts, k)
        matrix = np.column_stack(self._slot_columns(emission.slots, k))
        if mask is not None:
            keys = [column[mask] for column in keys]
            matrix = matrix[mask]
        return ArrayViewData.from_arrays(keys, matrix)

    def _strategy(self, emission: Emission) -> str:
        return self.strategies.get(emission.artifact, costmodel.STRATEGY_HASH)

    def _key_table(self, k: int, key_parts, strategy: str) -> tuple:
        """The level-k runs grouped by their emission key (cached on trie).

        Key columns are trie level values broadcast down ancestor maps —
        a pure function of the index — so the grouping (a strategy-tagged
        grouper plus representative key values per group) is computed
        once and shared across executions and plans on the same index.
        The cache key includes the strategy: hash and sort groupings are
        distinct derived structures over the same columns.
        """
        key = ("groupkeys", strategy, k, tuple(part.level for part in key_parts))
        got = self.cache.get(key)
        if got is None:
            columns = self._key_columns(key_parts, k)
            grouper = _make_grouper(columns, strategy)
            representative = [column[grouper.first_index] for column in columns]
            got = (grouper, representative)
            self.cache[key] = got
        return got

    def _hash_output(self, lowered: LoweredEmission) -> dict:
        if lowered.emission.has_carried_keys:
            return self._carried_hash_output(lowered)
        return self._plain_hash_output(lowered.emission)

    def _plain_hash_output(self, emission: Emission) -> ArrayViewData:
        """Probe-accumulate emissions as a masked group-by over runs.

        Every slot of a non-carried emission shares the host level and
        key parts (the emit level is the deepest group-by level and the
        key parts come straight from the group-by); slots differ only in
        their support guard, so they are grouped per guard like the code
        generator groups them. Each slot contributes per-run values that
        the grouper sums per key — in input (trie) order, like the
        interpreted dict accumulation, whether it scatters
        (``np.bincount``, hash strategy) or gathers (stable argsort +
        ``np.add.reduceat``, sort strategy — the cost model's pick for
        nearly-unique keys); dead runs contribute an exact 0.0. A key
        exists iff some guarded group had a surviving run under it,
        matching the generated probe-accumulate exactly.
        """
        first = emission.slots[0]
        k, key_parts = first.level, first.key_parts
        if any(
            slot.level != k or slot.key_parts != key_parts
            for slot in emission.slots
        ):  # pragma: no cover - decomposition invariant for non-carried slots
            raise PlanError(
                f"{emission.artifact}: slots disagree on host level/key parts"
            )
        grouper, representative = self._key_table(
            k, key_parts, self._strategy(emission)
        )
        num_keys = grouper.num_keys
        by_support: dict[int | None, list[EmissionSlot]] = {}
        for slot in emission.slots:
            by_support.setdefault(slot.support, []).append(slot)
        matrix = np.zeros((num_keys, emission.width))
        partial_fired = np.zeros(num_keys, dtype=bool)
        all_fired = False
        for support, slots in by_support.items():
            mask = self._emission_mask(k, support)
            columns = self._slot_columns(slots, k)
            if mask is None:
                all_fired = True
            else:
                partial_fired |= grouper.fired(mask)
                columns = [np.where(mask, column, 0.0) for column in columns]
            for slot, column in zip(slots, columns):
                matrix[:, slot.slot] += grouper.accumulate(column)
        if not all_fired and num_keys and not partial_fired.all():
            representative = [column[partial_fired] for column in representative]
            matrix = matrix[partial_fired]
        return ArrayViewData.from_arrays(list(representative), matrix)

    # ------------------------------------------------- carried-keyed emissions
    def _entry_geometry(
        self, block: int, k: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Entry segment ``(start, count)`` per level-k run for one block.

        The probe resolved key rows at the block's bind level; ancestor
        maps broadcast them down to the (deeper or equal) emission level.
        Dead runs get count 0, so expansion drops them for free.
        """
        got = self._entry_geo.get((block, k))
        if got is None:
            binding = self.plan.block_binding(block)
            key_row, found = self._carried[block]
            j = binding.bind_level
            if j < k:
                anc = self.ancestors(j, k)
                key_row, found = key_row[anc], found[anc]
            got = self.tables[binding.view].entry_ranges(key_row, found)
            self._entry_geo[(block, k)] = got
        return got

    def _expand_entries(
        self, k: int, key_blocks: tuple[int, ...], support: int | None
    ) -> tuple[np.ndarray, dict[int, np.ndarray]]:
        """Cross-product expansion of surviving runs by keyed-block entries.

        Returns the level-k run index per expanded (run, entry…) pair plus
        one flattened-entry index array per keyed block. Each block
        multiplies the pair list by its per-run entry count (``np.repeat``
        over counts), in block-index order — the vectorized form of the
        generated nested entry loops, preserving their enumeration order.
        """
        mask = self._emission_mask(k, support)
        if mask is None:
            sel = np.arange(self.runs(k), dtype=np.int64)
        else:
            sel = np.flatnonzero(mask)
        entry_idx: dict[int, np.ndarray] = {}
        for block in key_blocks:
            starts, counts = self._entry_geometry(block, k)
            c = counts[sel]
            reps = np.repeat(np.arange(len(sel), dtype=np.int64), c)
            first = np.cumsum(c) - c
            within = np.arange(len(reps), dtype=np.int64) - first[reps]
            entries = starts[sel][reps] + within
            sel = sel[reps]
            for prior in entry_idx:
                entry_idx[prior] = entry_idx[prior][reps]
            entry_idx[block] = entries
        return sel, entry_idx

    def _expanded_key_columns(
        self, key_parts, k: int, sel: np.ndarray, entry_idx: dict[int, np.ndarray]
    ) -> list[np.ndarray]:
        columns = []
        for part in key_parts:
            if part.kind == "rel":
                level_column = self.full(
                    self.down(self.level_values(part.level), part.level, k), k
                )
                columns.append(level_column[sel])
            else:  # 'car': part.level stores the block index
                table = self.tables[self.plan.block_binding(part.level).view]
                columns.append(table.carried_columns[part.pos][entry_idx[part.level]])
        return columns

    def _expanded_slot_value(
        self,
        slot: EmissionSlot,
        k: int,
        sel: np.ndarray,
        entry_idx: dict[int, np.ndarray],
    ) -> np.ndarray:
        """γ × β × ∏ carried factors per expanded pair, in statement order."""
        value = None
        if slot.gamma is not None:
            gamma = self.full(
                self.down(self._gamma[slot.gamma], self._gamma_level[slot.gamma], k),
                k,
            )
            value = gamma[sel]
        if slot.beta is not None:  # defensive: keyed slots decompose γ-only
            beta = self.full(self._beta[slot.beta], k)
            value = beta[sel] if value is None else value * beta[sel]
        for factor in slot.carried_factors:
            table = self.tables[self.plan.block_binding(factor.block).view]
            piece = table.agg_matrix[entry_idx[factor.block], factor.agg_index]
            value = piece if value is None else value * piece
        if value is None:
            value = np.ones(len(sel), dtype=np.float64)
        return value

    def _carried_hash_output(self, lowered: LoweredEmission) -> dict:
        """Carried-keyed emissions: expand runs by entries, then group.

        One expansion per slot group — the same ``(level, key parts, key
        blocks, support)`` partition the code generator nests entry loops
        for (:attr:`LoweredEmission.slot_groups`). Key columns gather
        from trie levels (``'rel'`` parts, via ancestor maps) and the
        flattened carried columns (``'car'`` parts, via the expanded
        entry indices); each slot's per-pair values accumulate through
        the strategy's grouper in expansion (= trie × entry-list) order,
        matching the interpreted nested loops. With a single slot group
        (every plan the tree planner emits today) the result keeps
        columnar arrays; heterogeneous groups merge per key into a plain
        dict — a key exists iff some group's surviving pair emitted under
        it, exactly like the generated first-touch inserts.
        """
        emission = lowered.emission
        strategy = self._strategy(emission)
        parts = []
        for group in lowered.slot_groups:
            first, slots = group.first, group.slots
            level, key_parts = first.level, first.key_parts
            sel, entry_idx = self._expand_entries(
                level, first.key_blocks, first.support
            )
            columns = self._expanded_key_columns(key_parts, level, sel, entry_idx)
            grouper = _make_grouper(columns, strategy)
            matrix = np.zeros((grouper.num_keys, emission.width))
            for slot in slots:
                value = self._expanded_slot_value(slot, level, sel, entry_idx)
                matrix[:, slot.slot] = grouper.accumulate(value)
            parts.append(
                (
                    [column[grouper.first_index] for column in columns],
                    slots,
                    matrix,
                )
            )
        if len(parts) == 1:
            columns, _, matrix = parts[0]
            return ArrayViewData.from_arrays(list(columns), matrix)
        out: dict = {}
        for columns, slots, matrix in parts:
            if not len(matrix):
                continue
            if len(columns) == 1:
                keys = columns[0].tolist()
            else:
                keys = list(zip(*(column.tolist() for column in columns)))
            slot_values = [
                (slot.slot, matrix[:, slot.slot].tolist()) for slot in slots
            ]
            for i, key in enumerate(keys):
                row = out.get(key)
                if row is None:
                    row = out[key] = [0.0] * emission.width
                for position, values in slot_values:
                    row[position] += values[i]
        return out

    def outputs(self) -> dict[str, dict]:
        self._run_probes()
        self._run_gammas()
        self._run_betas()
        out: dict[str, dict] = {}
        for lowered in self.lowered.emissions:
            emission = lowered.emission
            # dispatch on the *base* mode: a 'topk' emission accumulates
            # its full groups exactly like its base (the ranked cut is
            # applied once, at result finishing — see repro.core.topk).
            if lowered.base_mode == MODE_SCALAR:
                out[emission.artifact] = self._scalar_output(emission)
            elif lowered.base_mode == MODE_ALIGNED:
                out[emission.artifact] = self._aligned_output(emission)
            else:
                out[emission.artifact] = self._hash_output(lowered)
        return out


# ---------------------------------------------------------------------------
# the backend object the engine dispatches to
# ---------------------------------------------------------------------------


class NumpyCompiledGroup:
    """One plan lowered to the staged NumPy array program.

    Implements the same execution protocol as
    :class:`repro.core.cbackend.CCompiledGroup` (``prepare_bindings`` /
    ``execute``), so the runtime dispatch, the partitioned path and the
    incremental maintainer drive it unchanged.
    """

    def __init__(self, plan: MultiOutputPlan, adaptive: bool = True) -> None:
        if not supports_plan(plan):
            raise PlanError(
                f"plan {plan.group_name} is not supported by the numpy backend"
            )
        self.plan = plan
        #: the staged schedule (pure structure, shared across executions).
        self.lowered = lower_plan(plan)
        #: whether the cost model picks hash vs sort per emission at
        #: execution time; False pins the static hash path (the
        #: LMFAO_FORCE_STRATEGY override still applies either way).
        self.adaptive = adaptive

    def prepare_bindings(
        self,
        view_data: Mapping[str, dict],
        view_group_by: Mapping[str, tuple[str, ...]],
    ) -> dict[str, object]:
        """Marshal every incoming view into a probe table, once per group.

        Scalar views become sorted key-code tables, carried views CSR
        entry-list tables. Tables are read-only and shared across
        concurrent per-partition executions. ``ArrayViewData`` inputs
        (produced by upstream NumPy groups) skip the dict-to-array
        conversion entirely.
        """
        tables: dict[str, object] = {}
        for binding in self.plan.bindings:
            data = view_data.get(binding.view)
            if data is None:
                raise PlanError(f"missing incoming view data for {binding.view}")
            table_cls = _CarriedTable if binding.is_carried else _BindingTable
            tables[binding.view] = table_cls(
                binding, view_group_by[binding.view], data
            )
        return tables

    def execute(
        self,
        trie: TrieIndex,
        view_data: Mapping[str, dict],
        view_group_by: Mapping[str, tuple[str, ...]],
        functions: Mapping[str, Function],
        bind_entries: dict | None = None,
    ) -> dict[str, dict]:
        if trie.order != self.plan.order:
            raise PlanError(
                f"trie order {trie.order} does not match plan order "
                f"{self.plan.order}"
            )
        if bind_entries is None:
            bind_entries = self.prepare_bindings(view_data, view_group_by)
        strategies = costmodel.resolve_strategies(
            self.plan, trie, adaptive=self.adaptive
        )
        return _PlanEvaluation(
            self.plan,
            trie,
            bind_entries,
            functions,
            lowered=self.lowered,
            strategies=strategies,
        ).outputs()
