"""The shared lowering layer: plan IR → one staged execution schedule.

Historically each backend re-derived its own execution schedule from the
:class:`~repro.core.plan.MultiOutputPlan` — the Python code generator, the
NumPy array program and the C code generator each rebuilt "which probes
fire at which level, which γ/β nodes initialise/accumulate where, which
emissions live in which loop body" with three copies of the same dict
bucketing. This module defines that schedule **once** (the
``CompileState``/produce-consume shape of raco's compiler): a
:func:`lower_plan` pass groups every plan construct by the trie level
whose loop body hosts it, and all three backends consume the resulting
:class:`LoweredPlan`.

The lowering is **pure structure**: it depends only on the plan, never on
data. Execution-strategy decisions — hash vs sort grouping for an
emission, partition count, backend choice — are *data-dependent* and are
re-decided per execution by :mod:`repro.core.costmodel`, exactly like
re-bound predicate constants; they are deliberately absent from this IR
(and therefore from the serving layer's structural fingerprints).

Scheduling invariants preserved from the original per-backend code:

* probes, γ nodes and β nodes keep **plan order** within a level (the
  statement order of the generated code, which the NumPy backend's
  operand order mirrors for bit-exactness);
* β accumulation across levels is **deepest level first** — a chain's
  child (strictly deeper) is fully reduced before its parent multiplies
  it in (:attr:`LoweredPlan.beta_order`);
* hash-emission slots partition by host ``(level, key parts, key blocks,
  support)`` via :meth:`~repro.core.plan.Emission.slot_groups`, in
  emission order then first-slot order;
* aligned emissions host at their (single) slot level; scalar emissions
  run in the epilogue, after all loops.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.plan import (
    BetaNode,
    Emission,
    EmissionSlot,
    GammaNode,
    MultiOutputPlan,
    SubSumTerm,
    ViewBinding,
)

#: emission execution modes, decided purely by plan structure.
MODE_SCALAR = "scalar"
MODE_ALIGNED = "aligned"
MODE_HASH = "hash"
MODE_TOPK = "topk"


def base_emission_mode(emission: Emission) -> str:
    """The structural *host* mode: how the loop nest accumulates the
    emission's groups, ignoring any ordering on top. This is what the
    backends' accumulation code and the grouping-strategy cost model
    dispatch on — an ordered emission still groups like its base."""
    if not emission.group_by:
        return MODE_SCALAR
    if emission.aligned:
        return MODE_ALIGNED
    return MODE_HASH


def emission_mode(emission: Emission) -> str:
    """``'scalar'`` (no group-by), ``'aligned'`` (assignment fast path),
    ``'hash'`` (probe-accumulate), or ``'topk'`` (ordered query output) —
    the one mode split every backend dispatches on (the C backend renders
    ``'aligned'`` as array append).

    ``'topk'`` layers on a base mode (:func:`base_emission_mode`): the
    backends accumulate the **full** grouped aggregate exactly like the
    base — per-partition top-k is not mergeable from truncated partials,
    so truncating inside a backend would break the partitioned and
    incremental paths — and the ranked cut happens once, at result
    finishing (:mod:`repro.core.topk`), with the kernel (bounded heap vs
    full sort) picked per execution by the cost model.
    """
    if emission.order is not None and emission.group_by:
        return MODE_TOPK
    return base_emission_mode(emission)


@dataclass(frozen=True)
class SlotGroupSchedule:
    """One hash-emission slot group, hosted in one loop body.

    ``emission_index`` is the emission's position in ``plan.emissions``
    (the C backend addresses output buffers by it); ``slots`` share the
    host ``(level, key parts, key blocks, support)``.
    """

    emission_index: int
    emission: Emission
    slots: tuple[EmissionSlot, ...]

    @property
    def first(self) -> EmissionSlot:
        return self.slots[0]


@dataclass(frozen=True)
class LoweredEmission:
    """One emission with its structural execution mode and slot groups."""

    index: int
    emission: Emission
    mode: str
    #: host-partitioned slot groups (non-empty only for ``'hash'`` base).
    slot_groups: tuple[SlotGroupSchedule, ...]
    #: the host accumulation mode (= ``mode`` except for ``'topk'``,
    #: whose loop-nest scheduling follows its base).
    base_mode: str = ""

    def __post_init__(self) -> None:
        if not self.base_mode:
            object.__setattr__(
                self, "base_mode", base_emission_mode(self.emission)
            )


@dataclass(frozen=True)
class LevelSchedule:
    """Everything hosted by one trie level's loop body (``level == -1`` is
    the prologue/epilogue outside all loops).

    ``probes`` keeps plan order (scalar and carried bindings interleaved,
    the C backend's statement order); ``scalar_probes``/``carried_probes``
    are the same bindings split by kind (the Python generator probes
    scalars first — semantically equivalent since all probes at a level
    AND into the same alive mask, but each backend keeps its historical
    statement order).
    """

    level: int
    probes: tuple[ViewBinding, ...]
    scalar_probes: tuple[ViewBinding, ...]
    carried_probes: tuple[ViewBinding, ...]
    gammas: tuple[GammaNode, ...]
    beta_inits: tuple[BetaNode, ...]
    beta_accums: tuple[BetaNode, ...]
    aligned_emissions: tuple[LoweredEmission, ...]
    slot_groups: tuple[SlotGroupSchedule, ...]


@dataclass(frozen=True)
class LoweredPlan:
    """The staged schedule all three backends execute.

    ``levels`` holds one :class:`LevelSchedule` per trie level plus the
    prologue/epilogue pseudo-level ``-1`` (access via :meth:`level`);
    ``emissions`` is index-ordered with modes resolved;
    ``scalar_emissions`` the epilogue writes; ``beta_order`` the global
    deepest-first β evaluation order used by vectorised segment sums;
    ``subsums_by_block`` the Σ-over-entries terms each carried block
    computes at its bind level.
    """

    plan: MultiOutputPlan
    num_levels: int
    levels: tuple[LevelSchedule, ...]
    emissions: tuple[LoweredEmission, ...]
    scalar_emissions: tuple[LoweredEmission, ...]
    beta_order: tuple[BetaNode, ...]
    subsums_by_block: tuple[tuple[int, tuple[SubSumTerm, ...]], ...]

    def level(self, k: int) -> LevelSchedule:
        """The schedule hosted by level ``k`` (``-1`` = outside all loops)."""
        return self.levels[k + 1]

    def block_subsums(self, block: int) -> tuple[SubSumTerm, ...]:
        for index, terms in self.subsums_by_block:
            if index == block:
                return terms
        return ()


def lower_plan(plan: MultiOutputPlan) -> LoweredPlan:
    """Lower one plan to its staged schedule (pure, deterministic)."""
    num_rel = len(plan.relation_levels)

    probes_at: dict[int, list[ViewBinding]] = {}
    for binding in plan.bindings:
        probes_at.setdefault(binding.bind_level, []).append(binding)

    gammas_at: dict[int, list[GammaNode]] = {}
    for node in plan.gammas:
        gammas_at.setdefault(node.level, []).append(node)
    beta_inits_at: dict[int, list[BetaNode]] = {}
    beta_accums_at: dict[int, list[BetaNode]] = {}
    for node in plan.betas:
        beta_inits_at.setdefault(node.reset_level, []).append(node)
        beta_accums_at.setdefault(node.level, []).append(node)

    lowered_emissions: list[LoweredEmission] = []
    scalar_emissions: list[LoweredEmission] = []
    aligned_at: dict[int, list[LoweredEmission]] = {}
    slot_groups_at: dict[int, list[SlotGroupSchedule]] = {}
    for index, emission in enumerate(plan.emissions):
        mode = emission_mode(emission)
        base = base_emission_mode(emission)
        groups: tuple[SlotGroupSchedule, ...] = ()
        if base == MODE_HASH:
            groups = tuple(
                SlotGroupSchedule(index, emission, slots)
                for _key, slots in emission.slot_groups()
            )
        lowered = LoweredEmission(index, emission, mode, groups, base)
        lowered_emissions.append(lowered)
        # scheduling buckets follow the *base* mode: a topk emission's
        # loop-nest hosting is exactly its base's (the ranked cut runs
        # after all loops, at result finishing).
        if base == MODE_SCALAR:
            scalar_emissions.append(lowered)
        elif base == MODE_ALIGNED:
            aligned_at.setdefault(emission.slots[0].level, []).append(lowered)
        else:
            for group in groups:
                slot_groups_at.setdefault(group.first.level, []).append(group)

    levels = tuple(
        LevelSchedule(
            level=k,
            probes=tuple(probes_at.get(k, ())),
            scalar_probes=tuple(
                b for b in probes_at.get(k, ()) if not b.is_carried
            ),
            carried_probes=tuple(
                b for b in probes_at.get(k, ()) if b.is_carried
            ),
            gammas=tuple(gammas_at.get(k, ())),
            beta_inits=tuple(beta_inits_at.get(k, ())),
            beta_accums=tuple(beta_accums_at.get(k, ())),
            aligned_emissions=tuple(aligned_at.get(k, ())),
            slot_groups=tuple(slot_groups_at.get(k, ())),
        )
        for k in range(-1, num_rel)
    )

    subsums_by_block: dict[int, list[SubSumTerm]] = {}
    for term in plan.subsums:
        subsums_by_block.setdefault(term.block, []).append(term)

    return LoweredPlan(
        plan=plan,
        num_levels=num_rel,
        levels=levels,
        emissions=tuple(lowered_emissions),
        scalar_emissions=tuple(scalar_emissions),
        beta_order=tuple(
            sorted(plan.betas, key=lambda n: n.level, reverse=True)
        ),
        subsums_by_block=tuple(
            (block, tuple(terms)) for block, terms in subsums_by_block.items()
        ),
    )
