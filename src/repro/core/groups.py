"""The view-grouping step of the multi-output optimisation layer.

LMFAO "groups the views and output queries going out of a node such that
they can be computed together over the join of the relation at the node and
of its incoming views" (paper §2). Grouping must keep the **group dependency
graph acyclic**: an artifact that (transitively) consumes a view produced at
its own node cannot share a group with that view — in Figure 2 this is why
``V_I→S`` (group 5) and ``Q3`` (group 7) are separate groups at ``Items``.

The algorithm processes artifacts in dependency order and greedily adds each
to the earliest-created group at its node that does not create a cycle,
reproducing the seven groups of Figure 2 on the paper's example.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Union

from repro.core.viewgen import ViewPlan
from repro.core.views import Output, View
from repro.util.errors import PlanError

Artifact = Union[View, Output]


@dataclass
class Group:
    """Views and outputs computed in one pass over one node's relation."""

    index: int
    node: str
    views: list[View] = field(default_factory=list)
    outputs: list[Output] = field(default_factory=list)

    @property
    def name(self) -> str:
        return f"G{self.index}_{self.node}"

    @property
    def artifacts(self) -> list[Artifact]:
        return list(self.views) + list(self.outputs)

    @property
    def artifact_names(self) -> tuple[str, ...]:
        return tuple(a.name for a in self.artifacts)

    def incoming_view_names(self) -> tuple[str, ...]:
        """Names of the views any artifact of this group references."""
        seen: dict[str, None] = {}
        for artifact in self.artifacts:
            for aggregate in artifact.aggregates:
                for ref in aggregate.refs:
                    seen.setdefault(ref.view, None)
        return tuple(seen)

    def __repr__(self) -> str:
        return f"Group({self.name}: {', '.join(self.artifact_names)})"


@dataclass
class GroupPlan:
    """The grouped batch: groups in a valid execution (topological) order."""

    groups: list[Group]
    #: group index → indices of groups it consumes views from.
    dependencies: dict[int, tuple[int, ...]]

    @property
    def num_groups(self) -> int:
        return len(self.groups)

    def group_of_view(self, view_name: str) -> Group:
        for group in self.groups:
            if any(v.name == view_name for v in group.views):
                return group
        raise PlanError(f"no group produces view {view_name!r}")

    def dependency_edges(self) -> tuple[tuple[str, str], ...]:
        """(producer group, consumer group) name pairs — the Figure 2 DAG."""
        edges = []
        for consumer, producers in self.dependencies.items():
            for producer in producers:
                edges.append(
                    (self.groups[producer].name, self.groups[consumer].name)
                )
        return tuple(edges)


def _artifact_deps(artifact: Artifact) -> tuple[str, ...]:
    seen: dict[str, None] = {}
    for aggregate in artifact.aggregates:
        for ref in aggregate.refs:
            seen.setdefault(ref.view, None)
    return tuple(seen)


def _toposort(artifacts: list[Artifact]) -> list[Artifact]:
    """Order artifacts so producers precede consumers (stable)."""
    producer: dict[str, Artifact] = {
        a.name: a for a in artifacts if isinstance(a, View)
    }
    order: list[Artifact] = []
    state: dict[str, int] = {}  # 0=visiting, 1=done

    def visit(artifact: Artifact) -> None:
        mark = state.get(artifact.name)
        if mark == 1:
            return
        if mark == 0:
            raise PlanError(f"cyclic view dependency through {artifact.name}")
        state[artifact.name] = 0
        for dep in _artifact_deps(artifact):
            dep_artifact = producer.get(dep)
            if dep_artifact is None:
                raise PlanError(f"{artifact.name} references unknown view {dep!r}")
            visit(dep_artifact)
        state[artifact.name] = 1
        order.append(artifact)

    for artifact in artifacts:
        visit(artifact)
    return order


def build_groups(view_plan: ViewPlan, multi_output: bool = True) -> GroupPlan:
    """Partition views and outputs into multi-output groups.

    With ``multi_output=False`` every artifact becomes its own group — the
    ablation baseline in which no scan is shared.
    """
    artifacts: list[Artifact] = list(view_plan.views.values()) + list(view_plan.outputs)
    ordered = _toposort(artifacts)

    groups: list[Group] = []
    group_of: dict[str, int] = {}  # view name -> producing group index
    # adjacency: producer group -> consumer groups (for cycle checks)
    consumers: dict[int, set[int]] = {}

    def reaches(start: int, targets: set[int]) -> bool:
        if not targets:
            return False
        stack = [start]
        seen = {start}
        while stack:
            current = stack.pop()
            if current in targets:
                return True
            for nxt in consumers.get(current, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return False

    def home(artifact: Artifact) -> str:
        return artifact.source if isinstance(artifact, View) else artifact.node

    for artifact in ordered:
        node = home(artifact)
        dep_groups = {group_of[d] for d in _artifact_deps(artifact)}
        chosen: int | None = None
        if multi_output:
            for group in groups:
                if group.node != node:
                    continue
                if group.index in dep_groups:
                    continue  # would consume a view produced in the same pass
                if reaches(group.index, dep_groups):
                    continue  # adding would close a cycle
                chosen = group.index
                break
        if chosen is None:
            chosen = len(groups)
            groups.append(Group(index=chosen, node=node))
            consumers.setdefault(chosen, set())
        group = groups[chosen]
        if isinstance(artifact, View):
            group.views.append(artifact)
            group_of[artifact.name] = chosen
        else:
            group.outputs.append(artifact)
        for dep in dep_groups:
            consumers.setdefault(dep, set()).add(chosen)

    dependencies = {
        g.index: tuple(
            sorted({group_of[d] for a in g.artifacts for d in _artifact_deps(a)})
        )
        for g in groups
    }
    return GroupPlan(groups=groups, dependencies=dependencies)
