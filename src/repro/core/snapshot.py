"""Immutable, versioned database snapshots — the engine's MVCC spine.

The serving story of the ROADMAP needs queries and maintenance to overlap:
a read must never observe a half-applied delta, and a writer must never
wait for in-flight reads to drain. Both fall out of one discipline, the
same one distributed aggregation engines use to separate the cached plan
from the per-request data pass: **all trie/relation state a run touches is
reached through a single immutable :class:`Snapshot` object**, pinned once
at the start of the run.

* A :class:`Snapshot` is a frozen pair ``(version, database)`` plus the
  memo table of trie indexes built over that database. Nothing in it is
  ever mutated after publication — the trie table only *gains* entries,
  and every entry is itself immutable once inserted (the benign-race memo
  pattern: two threads may build the same index concurrently; either
  result is correct and one wins the dict slot).
* Writers (:meth:`repro.incremental.MaintainedBatch.apply`, or
  :meth:`repro.serve.AggregateServer.apply`) build the **next** snapshot
  off to the side with :meth:`Snapshot.with_relations` — structurally
  sharing every unchanged relation and every unchanged node's tries — and
  publish it through :meth:`SnapshotStore.install`, a single atomic
  reference swap.
* Readers pin :meth:`SnapshotStore.current` once and never look again;
  a concurrently installed version is simply invisible to them.

Versions are dense integers starting at 0 (the construction-time
database). :meth:`SnapshotStore.install` only accepts the direct successor
of the current version, so lost updates from two concurrent writer
lineages surface as a hard :class:`~repro.util.errors.PlanError` instead
of silently dropping one writer's delta. See ``docs/serving.md`` for the
full concurrency contract.

**Garbage collection.** The store retains every installed snapshot until
it is both *superseded* (a newer version was installed) and *unpinned*
(no reader refcount through :meth:`SnapshotStore.pin` /
:meth:`SnapshotStore.unpin` holds it). When a version becomes
reclaimable, the store drops its own reference — Python frees the
relations and tries once the last reader lets go — and fires every
registered :meth:`SnapshotStore.add_reclaim_hook` callback with the dead
version number, outside the store lock. The engine uses that hook to
unlink the version's shared-memory trie segments under
``executor="process"`` (:meth:`repro.core.mpexec.ProcessExecutor.drop_version`),
so a sustained write workload holds a bounded number of live versions
instead of accumulating one snapshot (and one segment set) per commit.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Mapping

from repro.data.catalog import Database
from repro.data.relation import Relation
from repro.util.errors import PlanError


@dataclass(frozen=True)
class Snapshot:
    """One immutable version of the database plus its trie memo table.

    Attributes
    ----------
    version:
        Dense version counter; 0 is the engine's construction-time state.
    db:
        The :class:`~repro.data.catalog.Database` of this version. Never
        mutated — updates produce a new database via
        :meth:`~repro.data.catalog.Database.with_relation`.
    tries:
        Memo table ``(node, order, filter signatures) → TrieIndex`` (the
        key is defined once, in :func:`repro.core.runtime.node_trie`).
        Insert-only; entries are immutable indexes over ``db``, so
        concurrent readers may populate it racily without locking.
    """

    version: int
    db: Database
    tries: dict = field(default_factory=dict, repr=False, compare=False)

    def with_relations(self, updated: Mapping[str, Relation]) -> "Snapshot":
        """The successor snapshot with the given relations replaced.

        Structural sharing on both axes: unchanged relations are carried
        by reference into the new database, and the trie memo is seeded
        with every entry whose node is *not* in ``updated`` — the
        partitioned-rebuild guarantee that an update to one join-tree
        node leaves every other node's indexes warm.
        """
        db = self.db
        for relation in updated.values():
            db = db.with_relation(relation)
        tries = {k: v for k, v in self.tries.items() if k[0] not in updated}
        return Snapshot(version=self.version + 1, db=db, tries=tries)

    def __repr__(self) -> str:
        return (
            f"Snapshot(version={self.version}, db={self.db.name!r}, "
            f"tries={len(self.tries)})"
        )


class SnapshotStore:
    """The atomically swappable "current version" cell of one engine.

    Reads (:meth:`current`) are lock-free — a single attribute load, atomic
    under the GIL. Writes (:meth:`install`) serialise on an internal lock
    and enforce the single-lineage rule: the incoming snapshot must be the
    direct successor of the current one. A conflict means two writers
    built successors of the same base concurrently (e.g. two maintained
    handles on one engine, or a handle racing
    :meth:`repro.serve.AggregateServer.apply`); the second install raises
    rather than silently discarding the first writer's delta.

    Reader pins (:meth:`pin` / :meth:`unpin`) refcount versions so the
    garbage collector (see the module docstring) only reclaims versions
    that are both superseded and unreferenced. :meth:`current` remains
    the unpinned peek for callers that only need a consistent read and
    hold the returned object themselves.
    """

    def __init__(self, initial: Snapshot) -> None:
        self._current = initial
        self._lock = threading.Lock()
        self._pins: dict[int, int] = {}  # version -> reader refcount
        self._retained: dict[int, Snapshot] = {initial.version: initial}
        self._reclaim_hooks: list = []

    def current(self) -> Snapshot:
        """The latest installed snapshot (lock-free, never blocks)."""
        return self._current

    @property
    def version(self) -> int:
        return self._current.version

    # ------------------------------------------------------------- pins & GC
    def pin(self) -> Snapshot:
        """Pin the current snapshot: read + refcount increment, atomically.

        A pinned version survives being superseded — GC never reclaims it
        until the matching :meth:`unpin`. Pins nest (refcounted); every
        ``pin()``/``repin()`` must be paired with exactly one ``unpin()``.
        """
        with self._lock:
            snapshot = self._current
            self._pins[snapshot.version] = self._pins.get(snapshot.version, 0) + 1
            return snapshot

    def repin(self, snapshot: Snapshot) -> Snapshot:
        """Add a pin to a version the caller already holds (nested scopes)."""
        with self._lock:
            self._pins[snapshot.version] = self._pins.get(snapshot.version, 0) + 1
            return snapshot

    def unpin(self, version: int) -> None:
        """Drop one pin; reclaim any versions that just became unreachable."""
        with self._lock:
            count = self._pins.get(version, 0) - 1
            if count > 0:
                self._pins[version] = count
            else:
                self._pins.pop(version, None)
            reclaimed = self._collect_locked()
        self._fire_reclaim(reclaimed)

    def pinned_versions(self) -> dict[int, int]:
        """Live reader pins, ``version -> refcount`` (observability)."""
        with self._lock:
            return dict(self._pins)

    def retained_versions(self) -> list[int]:
        """Versions the store still holds: current + pinned predecessors."""
        with self._lock:
            return sorted(self._retained)

    def add_reclaim_hook(self, hook) -> None:
        """Register ``hook(version)``, called once per reclaimed version.

        Hooks fire outside the store lock, on whichever thread's
        ``install``/``unpin`` made the version unreachable. The engine
        wires the process executor's segment drop through this.
        """
        with self._lock:
            self._reclaim_hooks.append(hook)

    def remove_reclaim_hook(self, hook) -> None:
        """Deregister a hook added by :meth:`add_reclaim_hook` (idempotent).

        Lets owners with shorter lifetimes than the store — the serving
        layer's view cache — unhook on close instead of keeping a dead
        reference called for every future reclaim.
        """
        with self._lock:
            if hook in self._reclaim_hooks:
                self._reclaim_hooks.remove(hook)

    def _collect_locked(self) -> list[int]:
        """Drop superseded, unpinned versions; returns what was reclaimed."""
        dead = [
            version
            for version in self._retained
            if version < self._current.version and version not in self._pins
        ]
        for version in dead:
            del self._retained[version]
        return dead

    def _fire_reclaim(self, versions: list) -> None:
        for version in versions:
            for hook in list(self._reclaim_hooks):
                hook(version)

    # --------------------------------------------------------------- install
    def install(self, snapshot: Snapshot) -> Snapshot:
        """Publish ``snapshot`` as the current version.

        Raises :class:`~repro.util.errors.PlanError` unless
        ``snapshot.version == current.version + 1`` — the stale-writer
        conflict described in the class docstring. Returns the installed
        snapshot for chaining. Superseded versions no reader pins are
        reclaimed as part of the install (hooks fire after the swap,
        outside the lock).
        """
        with self._lock:
            expected = self._current.version + 1
            if snapshot.version != expected:
                raise PlanError(
                    f"snapshot version conflict: cannot install version "
                    f"{snapshot.version} over current version "
                    f"{self._current.version}; another writer advanced this "
                    f"engine first (one maintenance lineage per engine — "
                    f"see docs/serving.md)"
                )
            self._current = snapshot
            self._retained[snapshot.version] = snapshot
            reclaimed = self._collect_locked()
        self._fire_reclaim(reclaimed)
        return snapshot
