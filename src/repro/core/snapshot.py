"""Immutable, versioned database snapshots — the engine's MVCC spine.

The serving story of the ROADMAP needs queries and maintenance to overlap:
a read must never observe a half-applied delta, and a writer must never
wait for in-flight reads to drain. Both fall out of one discipline, the
same one distributed aggregation engines use to separate the cached plan
from the per-request data pass: **all trie/relation state a run touches is
reached through a single immutable :class:`Snapshot` object**, pinned once
at the start of the run.

* A :class:`Snapshot` is a frozen pair ``(version, database)`` plus the
  memo table of trie indexes built over that database. Nothing in it is
  ever mutated after publication — the trie table only *gains* entries,
  and every entry is itself immutable once inserted (the benign-race memo
  pattern: two threads may build the same index concurrently; either
  result is correct and one wins the dict slot).
* Writers (:meth:`repro.incremental.MaintainedBatch.apply`, or
  :meth:`repro.serve.AggregateServer.apply`) build the **next** snapshot
  off to the side with :meth:`Snapshot.with_relations` — structurally
  sharing every unchanged relation and every unchanged node's tries — and
  publish it through :meth:`SnapshotStore.install`, a single atomic
  reference swap.
* Readers pin :meth:`SnapshotStore.current` once and never look again;
  a concurrently installed version is simply invisible to them.

Versions are dense integers starting at 0 (the construction-time
database). :meth:`SnapshotStore.install` only accepts the direct successor
of the current version, so lost updates from two concurrent writer
lineages surface as a hard :class:`~repro.util.errors.PlanError` instead
of silently dropping one writer's delta. See ``docs/serving.md`` for the
full concurrency contract.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Mapping

from repro.data.catalog import Database
from repro.data.relation import Relation
from repro.util.errors import PlanError


@dataclass(frozen=True)
class Snapshot:
    """One immutable version of the database plus its trie memo table.

    Attributes
    ----------
    version:
        Dense version counter; 0 is the engine's construction-time state.
    db:
        The :class:`~repro.data.catalog.Database` of this version. Never
        mutated — updates produce a new database via
        :meth:`~repro.data.catalog.Database.with_relation`.
    tries:
        Memo table ``(node, order, filter signatures) → TrieIndex`` (the
        key is defined once, in :func:`repro.core.runtime.node_trie`).
        Insert-only; entries are immutable indexes over ``db``, so
        concurrent readers may populate it racily without locking.
    """

    version: int
    db: Database
    tries: dict = field(default_factory=dict, repr=False, compare=False)

    def with_relations(self, updated: Mapping[str, Relation]) -> "Snapshot":
        """The successor snapshot with the given relations replaced.

        Structural sharing on both axes: unchanged relations are carried
        by reference into the new database, and the trie memo is seeded
        with every entry whose node is *not* in ``updated`` — the
        partitioned-rebuild guarantee that an update to one join-tree
        node leaves every other node's indexes warm.
        """
        db = self.db
        for relation in updated.values():
            db = db.with_relation(relation)
        tries = {k: v for k, v in self.tries.items() if k[0] not in updated}
        return Snapshot(version=self.version + 1, db=db, tries=tries)

    def __repr__(self) -> str:
        return (
            f"Snapshot(version={self.version}, db={self.db.name!r}, "
            f"tries={len(self.tries)})"
        )


class SnapshotStore:
    """The atomically swappable "current version" cell of one engine.

    Reads (:meth:`current`) are lock-free — a single attribute load, atomic
    under the GIL. Writes (:meth:`install`) serialise on an internal lock
    and enforce the single-lineage rule: the incoming snapshot must be the
    direct successor of the current one. A conflict means two writers
    built successors of the same base concurrently (e.g. two maintained
    handles on one engine, or a handle racing
    :meth:`repro.serve.AggregateServer.apply`); the second install raises
    rather than silently discarding the first writer's delta.
    """

    def __init__(self, initial: Snapshot) -> None:
        self._current = initial
        self._lock = threading.Lock()

    def current(self) -> Snapshot:
        """The latest installed snapshot (lock-free, never blocks)."""
        return self._current

    @property
    def version(self) -> int:
        return self._current.version

    def install(self, snapshot: Snapshot) -> Snapshot:
        """Publish ``snapshot`` as the current version.

        Raises :class:`~repro.util.errors.PlanError` unless
        ``snapshot.version == current.version + 1`` — the stale-writer
        conflict described in the class docstring. Returns the installed
        snapshot for chaining.
        """
        with self._lock:
            expected = self._current.version + 1
            if snapshot.version != expected:
                raise PlanError(
                    f"snapshot version conflict: cannot install version "
                    f"{snapshot.version} over current version "
                    f"{self._current.version}; another writer advanced this "
                    f"engine first (one maintenance lineage per engine — "
                    f"see docs/serving.md)"
                )
            self._current = snapshot
            return snapshot
