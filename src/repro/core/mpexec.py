"""Multiprocess domain parallelism over shared-memory tries.

Thread-based domain parallelism cannot beat the GIL for the Python and
NumPy backends, so this module runs a group's trie partitions in **worker
processes** instead — without ever pickling a trie or a relation:

* **Shared-memory transport** — the CSR trie is already a handful of flat
  numpy arrays (sorted column buffers plus five level arrays per level).
  :func:`export_tries` packs every partition's arrays into one
  ``multiprocessing.shared_memory`` segment and describes the layout with a
  picklable :class:`TrieExport`; a worker maps the segment and reassembles
  each partition zero-copy via :meth:`TrieIndex.from_shared_parts`.
* **Warm-up protocol** — compiled artefacts (generated code, native C or
  NumPy groups) hold unpicklable state, so workers receive the *plans* once
  per batch and recompile locally. The warmed batch is cached per process,
  amortised across every subsequent run of the same compilation (the
  decision-tree workload), exactly like the parent's plan cache.
* **Merge topology** — following the distributed-aggregation literature
  (PAPERS.md), each worker first **locally combines** the partials of its
  contiguous partition chunks with :func:`merge_partial_outputs`, then the
  parent **tree-reduces** the per-chunk partials pairwise. The chunk grid
  is **canonical**: it depends only on the partition list (contiguous in
  level-0 order, at most :data:`LOCAL_COMBINE_FANOUT` chunks), never on
  the worker count — chunks are dealt to workers round-robin — so the
  floating-point association of every per-key sum is fixed and results
  are deterministic across worker counts, exactly like the thread path.
* **Snapshot-pinned lifecycle** — segments are keyed by
  ``(snapshot version, trie cache key)``. :meth:`ProcessExecutor.retain`
  pins a version for the duration of a run; incremental maintenance
  installing a successor never unlinks a segment a running worker still
  maps — garbage collection only reclaims unpinned, superseded versions
  (workers are told to drop their mappings first).

Functions travel by name (:meth:`repro.query.functions.Function.__reduce__`);
:func:`plan_transportable` gates offloading so plans referencing custom
lambdas fall back to in-process execution rather than failing in a worker.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import traceback
import uuid
import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory
from multiprocessing.connection import wait as _connection_wait
from typing import Mapping, Sequence

import numpy as np

from repro.core.plan import MultiOutputPlan
from repro.core.runtime import (
    execute_plan_partitioned,
    merge_partial_outputs,
)
from repro.data.relation import Relation
from repro.data.schema import RelationSchema
from repro.data.trie import TrieIndex, TrieLevel
from repro.query.functions import Function, transportable
from repro.util.errors import PlanError

#: every segment this module creates starts with this prefix, so leak
#: checks (tests/conftest.py) can scan ``/dev/shm`` for strays.
SEGMENT_PREFIX = "lmfao_"

#: upper bound on the canonical local-combine chunk grid: a group's
#: partitions are split into at most this many contiguous chunks (fewer
#: when there are fewer partitions), **independent of the worker count**.
#: Beyond this many partitions the surplus amortises into worker-local
#: combines; keeping the grid a function of the partition list alone is
#: what makes merged float sums deterministic across worker counts.
LOCAL_COMBINE_FANOUT = 16

#: names of segments currently created (and not yet unlinked) by this
#: process — the leak-checking fixture asserts this drains to empty.
_ACTIVE_SEGMENTS: set[str] = set()


def active_segment_names() -> list[str]:
    """Names of shared-memory segments this process has not unlinked yet."""
    return sorted(_ACTIVE_SEGMENTS)


# --------------------------------------------------------------- transportability


def plan_function_names(plan: MultiOutputPlan) -> set[str]:
    """Every function slot name one plan's execution resolves at runtime."""
    names = {func_name for _, _, func_name in plan.level_functions}
    for product in plan.row_products:
        names.update(func_name for _, func_name in product)
    return names


def plan_transportable(
    plan: MultiOutputPlan, functions: Mapping[str, Function]
) -> bool:
    """Whether every function the plan references survives pickle-by-name.

    False routes the group to in-process execution — a custom lambda
    registered only in the parent cannot be reconstructed in a fresh
    worker (see :func:`repro.query.functions.transportable`).
    """
    for name in plan_function_names(plan):
        fn = functions.get(name)
        if fn is None or not transportable(fn):
            return False
    return True


# ------------------------------------------------------------- segment layout


@dataclass(frozen=True)
class _ArraySpec:
    """One flat array inside a segment: where it lives and what it is."""

    offset: int
    dtype: str
    length: int


@dataclass(frozen=True)
class _LevelSpec:
    """The five CSR arrays of one trie level, by segment position."""

    attribute: str
    values: _ArraySpec
    row_start: _ArraySpec
    row_end: _ArraySpec
    child_start: _ArraySpec
    child_end: _ArraySpec


@dataclass(frozen=True)
class _PartitionSpec:
    """One trie partition: its sorted column buffers plus level arrays."""

    columns: tuple[tuple[str, _ArraySpec], ...]
    levels: tuple[_LevelSpec, ...]


@dataclass(frozen=True)
class TrieExport:
    """A picklable description of one segment full of trie partitions.

    The parent ships this (tiny) object; the worker attaches the named
    segment and rebuilds any partition's :class:`TrieIndex` zero-copy.
    """

    segment: str
    nbytes: int
    schema: RelationSchema
    order: tuple[str, ...]
    partitions: tuple[_PartitionSpec, ...]

    @property
    def num_partitions(self) -> int:
        return len(self.partitions)


def export_tries(
    tries: Sequence[TrieIndex],
) -> tuple[TrieExport, shared_memory.SharedMemory]:
    """Pack trie partitions into one shared-memory segment.

    All partitions share one segment (one shm file descriptor per trie,
    not per array); arrays are 64-byte aligned. The caller owns the
    returned :class:`~multiprocessing.shared_memory.SharedMemory` and must
    eventually unlink it (:class:`ProcessExecutor` does this through its
    snapshot-pinned segment store).
    """
    first = tries[0]
    schema = first.relation.schema
    staged: list[tuple[_ArraySpec, np.ndarray]] = []
    cursor = 0

    def stage(array: np.ndarray) -> _ArraySpec:
        nonlocal cursor
        array = np.ascontiguousarray(array)
        cursor = -(-cursor // 64) * 64
        spec = _ArraySpec(offset=cursor, dtype=array.dtype.str, length=len(array))
        staged.append((spec, array))
        cursor += array.nbytes
        return spec

    partitions = []
    for trie in tries:
        columns = tuple(
            (name, stage(trie.relation.column(name)))
            for name in schema.attribute_names
        )
        levels = tuple(
            _LevelSpec(
                attribute=level.attribute,
                values=stage(level.values),
                row_start=stage(level.row_start),
                row_end=stage(level.row_end),
                child_start=stage(level.child_start),
                child_end=stage(level.child_end),
            )
            for level in trie.levels
        )
        partitions.append(_PartitionSpec(columns=columns, levels=levels))

    name = f"{SEGMENT_PREFIX}{os.getpid():x}_{uuid.uuid4().hex[:12]}"
    shm = shared_memory.SharedMemory(name=name, create=True, size=max(1, cursor))
    for spec, array in staged:
        destination = np.ndarray(
            (spec.length,), dtype=np.dtype(spec.dtype), buffer=shm.buf,
            offset=spec.offset,
        )
        destination[...] = array
    _ACTIVE_SEGMENTS.add(shm.name)
    export = TrieExport(
        segment=shm.name,
        nbytes=shm.size,
        schema=schema,
        order=tuple(first.order),
        partitions=tuple(partitions),
    )
    return export, shm


def attach_partition(
    shm: shared_memory.SharedMemory, export: TrieExport, index: int
) -> TrieIndex:
    """Rebuild one exported partition as a zero-copy :class:`TrieIndex`.

    Every array is an ndarray view over the mapped segment — the segment
    must stay mapped for the index's lifetime (the worker's segment cache
    guarantees this).
    """
    spec = export.partitions[index]

    def view(array_spec: _ArraySpec) -> np.ndarray:
        array = np.ndarray(
            (array_spec.length,),
            dtype=np.dtype(array_spec.dtype),
            buffer=shm.buf,
            offset=array_spec.offset,
        )
        array.setflags(write=False)
        return array

    relation = Relation(
        export.schema, {name: view(s) for name, s in spec.columns}
    )
    levels = [
        TrieLevel(
            attribute=level.attribute,
            values=view(level.values),
            row_start=view(level.row_start),
            row_end=view(level.row_end),
            child_start=view(level.child_start),
            child_end=view(level.child_end),
        )
        for level in spec.levels
    ]
    return TrieIndex.from_shared_parts(relation, export.order, levels)


def _unlink_segment(shm: shared_memory.SharedMemory) -> None:
    try:
        shm.close()
    except BufferError:  # a live ndarray still views the buffer
        pass
    try:
        shm.unlink()
    except FileNotFoundError:
        pass
    _ACTIVE_SEGMENTS.discard(shm.name)


# ------------------------------------------------------------------ worker side


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    # Python 3.11 registers even *attached* segments with the resource
    # tracker, but workers inherit the parent's tracker process (the fd
    # travels in the spawn preparation data), whose registry is a set —
    # the attach-register is a harmless duplicate of the parent's own
    # create-register, and the parent's unlink clears it. Explicitly
    # unregistering here would instead strip the parent's registration
    # and make the real unlink trip a tracker KeyError.
    return shared_memory.SharedMemory(name=name)


def _close_quietly(shm: shared_memory.SharedMemory) -> None:
    try:
        shm.close()
    except BufferError:
        # Some trie cache still views the buffer; the mapping dies with
        # the process, and only the parent unlinks the named segment.
        pass


def _warm_batch(payload):
    """Recompile one batch's plans in this process (the warm-up)."""
    plans, backend, share_terms, attribute_kinds, adaptive = payload
    from repro.core.codegen import generate_group

    code = [generate_group(plan, share_terms=share_terms) for plan in plans]
    natives: list = [None] * len(plans)
    library = None
    if backend == "c":
        from repro.core import cbackend

        natives, library = cbackend.compile_c_groups(plans, attribute_kinds)
    elif backend == "numpy":
        from repro.core import npbackend

        natives = npbackend.compile_numpy_groups(plans, adaptive=adaptive)
    return plans, code, natives, library


def _worker_main(conn) -> None:
    """Worker loop: warm batches, execute partition chunks, drop segments.

    Messages arrive in pipe order, so a ``warm`` preceding the first
    ``exec`` of a batch needs no acknowledgement round-trip. Any failure
    is reported as ``("error", traceback)`` — the parent turns it into a
    :class:`PlanError`; a vanished pipe ends the loop.
    """
    batches: dict = {}  # batch key -> (plans, code, natives, library)
    segments: dict = {}  # segment name -> SharedMemory
    tries: dict = {}  # (segment name, partition index) -> TrieIndex
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        kind = message[0]
        if kind == "close":
            break
        try:
            if kind == "warm":
                _, key, payload = message
                batches[key] = _warm_batch(payload)
            elif kind == "drop":
                _, names = message
                for name in names:
                    for cached in [k for k in tries if k[0] == name]:
                        del tries[cached]
                    shm = segments.pop(name, None)
                    if shm is not None:
                        _close_quietly(shm)
            elif kind == "exec":
                (_, key, group_index, export, part_indices,
                 view_data, view_group_by, functions) = message
                plans, code, natives, _library = batches[key]
                shm = segments.get(export.segment)
                if shm is None:
                    shm = _attach_segment(export.segment)
                    segments[export.segment] = shm
                chunk = []
                for part in part_indices:
                    trie = tries.get((export.segment, part))
                    if trie is None:
                        trie = attach_partition(shm, export, part)
                        tries[(export.segment, part)] = trie
                    chunk.append(trie)
                outputs = execute_plan_partitioned(
                    code[group_index],
                    natives[group_index],
                    plans[group_index],
                    chunk,
                    view_data,
                    view_group_by,
                    functions,
                )
                conn.send(("done", outputs))
            else:
                raise RuntimeError(f"unknown executor message {kind!r}")
        except BaseException:
            try:
                conn.send(("error", traceback.format_exc()))
            except (BrokenPipeError, OSError):
                break
    for shm in segments.values():
        _close_quietly(shm)
    try:
        conn.close()
    except OSError:
        pass


# ------------------------------------------------------------------ parent side


def _default_start_method() -> str:
    """``forkserver`` where available (safe with the serving layer's
    threads, cheap restarts), else ``spawn``."""
    methods = multiprocessing.get_all_start_methods()
    if "forkserver" in methods:
        return "forkserver"
    return "spawn" if "spawn" in methods else methods[0]


@dataclass
class _Segment:
    export: TrieExport
    shm: shared_memory.SharedMemory
    version: int


def _release_resources(procs: list, conns: list, segments: dict) -> None:
    """Tear down a pool and unlink its segments (idempotent; runs at
    :meth:`ProcessExecutor.close` or, failing that, at garbage
    collection / interpreter exit through ``weakref.finalize``)."""
    for conn in conns:
        try:
            conn.send(("close",))
        except Exception:
            pass
    for conn in conns:
        try:
            conn.close()
        except Exception:
            pass
    for proc in procs:
        proc.join(timeout=5.0)
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=5.0)
    procs.clear()
    conns.clear()
    for segment in list(segments.values()):
        _unlink_segment(segment.shm)
    segments.clear()


class ProcessExecutor:
    """A persistent pool of worker processes executing trie partitions.

    One executor per engine; thread-safe (the serving layer calls
    :meth:`execute_group` from many request threads — a single lock
    serialises pool traffic, while the workers themselves run truly in
    parallel). The pool is lazy: processes start on first use and are
    respawned after a crash.
    """

    def __init__(
        self,
        workers: int,
        backend: str,
        share_terms: bool,
        attribute_kinds: dict[str, str],
        start_method: str | None = None,
        adaptive: bool = True,
    ) -> None:
        self.workers = max(1, int(workers))
        self.backend = backend
        self.adaptive = bool(adaptive)
        self.share_terms = share_terms
        self.attribute_kinds = dict(attribute_kinds)
        method = (
            start_method
            or os.environ.get("LMFAO_MP_START")
            or _default_start_method()
        )
        if method not in multiprocessing.get_all_start_methods():
            method = _default_start_method()
        self.start_method = method
        self._lock = threading.RLock()
        self._closed = False
        self._procs: list = []
        self._conns: list = []
        self._warmed: list[set] = []  # per worker: batch keys warmed
        self._segments: dict[tuple, _Segment] = {}
        self._pins: dict[int, int] = {}  # snapshot version -> active runs
        self._latest_version = -1
        self._batch_keys: dict[int, int] = {}
        self._batch_counter = 0
        self._finalizer = weakref.finalize(
            self, _release_resources, self._procs, self._conns, self._segments
        )

    # ------------------------------------------------------------------ pool
    def _context(self):
        context = multiprocessing.get_context(self.start_method)
        if self.start_method == "forkserver":
            try:
                context.set_forkserver_preload(["repro.core.mpexec"])
            except Exception:
                pass
        return context

    def _ensure_pool_locked(self) -> None:
        if self._closed:
            raise PlanError("process executor is closed")
        if self._conns:
            return
        context = self._context()
        for _ in range(self.workers):
            parent_conn, child_conn = context.Pipe()
            proc = context.Process(
                target=_worker_main, args=(child_conn,), daemon=True
            )
            proc.start()
            child_conn.close()
            self._procs.append(proc)
            self._conns.append(parent_conn)
            self._warmed.append(set())

    def ensure_workers(self) -> int:
        """Spawn the pool if needed; returns the live worker count."""
        with self._lock:
            self._ensure_pool_locked()
            return sum(1 for proc in self._procs if proc.is_alive())

    def _abort_locked(self, reason: str):
        """Kill the pool and surface a clean error; next use respawns."""
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
        for proc in self._procs:
            proc.join(timeout=5.0)
        for conn in self._conns:
            try:
                conn.close()
            except Exception:
                pass
        self._procs.clear()
        self._conns.clear()
        self._warmed.clear()
        raise PlanError(f"process executor: {reason}")

    # -------------------------------------------------------- segment lifecycle
    def retain(self, version: int) -> None:
        """Pin a snapshot version for the duration of one run.

        While pinned, no segment of that version is unlinked — ``apply``
        installing a successor mid-run can never tear a mapped trie out
        from under a worker.
        """
        with self._lock:
            self._latest_version = max(self._latest_version, version)
            self._pins[version] = self._pins.get(version, 0) + 1

    def release(self, version: int) -> None:
        """Unpin a version and reclaim unpinned, superseded segments."""
        with self._lock:
            count = self._pins.get(version, 0) - 1
            if count > 0:
                self._pins[version] = count
            else:
                self._pins.pop(version, None)
            self._collect_locked()

    def _collect_locked(self) -> None:
        stale = [
            key
            for key, segment in self._segments.items()
            if segment.version < self._latest_version
            and segment.version not in self._pins
        ]
        if not stale:
            return
        names = [self._segments[key].export.segment for key in stale]
        for conn in self._conns:
            try:
                conn.send(("drop", names))
            except Exception:
                pass
        for key in stale:
            _unlink_segment(self._segments.pop(key).shm)

    def export(
        self, version: int, trie_key: tuple, tries: Sequence[TrieIndex]
    ) -> TrieExport:
        """The cached segment for one partitioned trie (export on miss).

        Keyed by ``(snapshot version, trie cache key)`` — re-running the
        same compilation over the same snapshot (the decision-tree
        workload, the serving layer's plan-cache hits) pays the segment
        copy exactly once per version.
        """
        with self._lock:
            self._latest_version = max(self._latest_version, version)
            segment = self._segments.get((version, trie_key))
            if segment is None:
                export, shm = export_tries(tries)
                segment = _Segment(export=export, shm=shm, version=version)
                self._segments[(version, trie_key)] = segment
            return segment.export

    def drop_version(self, version: int) -> None:
        """Unlink every segment of one garbage-collected snapshot version.

        Called by the engine's snapshot-GC reclaim hook once no reader
        pin can reach ``version``. A version still pinned *here* (a run
        in flight between ``retain``/``release``) is left alone — the
        executor's own :meth:`release` collects it once the run ends —
        as is a closed executor (teardown already unlinks everything).
        """
        with self._lock:
            if self._closed or version in self._pins:
                return
            stale = [
                key
                for key, segment in self._segments.items()
                if segment.version == version
            ]
            if not stale:
                return
            names = [self._segments[key].export.segment for key in stale]
            for conn in self._conns:
                try:
                    conn.send(("drop", names))
                except Exception:
                    pass
            for key in stale:
                _unlink_segment(self._segments.pop(key).shm)

    def segment_names(self) -> list[str]:
        """Names of the segments currently held (tests observe lifecycle)."""
        with self._lock:
            return sorted(
                segment.shm.name for segment in self._segments.values()
            )

    # --------------------------------------------------------------- execution
    def _batch_key(self, compiled) -> int:
        key = self._batch_keys.get(id(compiled))
        if key is None:
            key = self._batch_counter
            self._batch_counter += 1
            self._batch_keys[id(compiled)] = key
            # evict on GC so a recycled id() can never alias a stale key
            weakref.finalize(compiled, self._batch_keys.pop, id(compiled), None)
        return key

    def execute_group(
        self,
        compiled,
        group_index: int,
        export: TrieExport,
        view_data: Mapping[str, dict],
        view_group_by: Mapping[str, tuple[str, ...]],
        functions: Mapping[str, Function],
    ) -> dict[str, dict]:
        """Run one group's partitions across the pool and merge the partials.

        Partitions are split into a **canonical** grid of contiguous
        chunks in level-0 order — at most :data:`LOCAL_COMBINE_FANOUT` of
        them, a function of the partition list alone, never of the worker
        count — dealt to workers round-robin (a worker drains its queue
        in order). Each worker locally combines each chunk, the parent
        tree-reduces the per-chunk results pairwise; with the chunk grid
        and the reduce topology both worker-independent, the float
        association of every merged sum is fixed and results are
        deterministic across worker counts. Worker death surfaces as
        :class:`PlanError` (never a hang) and marks the pool for respawn;
        in-worker exceptions carry the worker traceback.
        """
        plan = compiled.plans[group_index]
        with self._lock:
            self._ensure_pool_locked()
            key = self._batch_key(compiled)
            num_parts = export.num_partitions
            num_chunks = min(LOCAL_COMBINE_FANOUT, num_parts)
            chunks = [
                list(range(
                    (c * num_parts) // num_chunks,
                    ((c + 1) * num_parts) // num_chunks,
                ))
                for c in range(num_chunks)
            ]
            payload = None
            # conn -> FIFO of chunk indices still owed by that worker
            pending: dict = {conn: [] for conn in self._conns}
            for index, chunk in enumerate(chunks):
                conn = self._conns[index % len(self._conns)]
                worker = index % len(self._conns)
                try:
                    if key not in self._warmed[worker]:
                        if payload is None:
                            payload = (
                                tuple(compiled.plans),
                                self.backend,
                                self.share_terms,
                                self.attribute_kinds,
                                self.adaptive,
                            )
                        conn.send(("warm", key, payload))
                        self._warmed[worker].add(key)
                    conn.send((
                        "exec", key, group_index, export, chunk,
                        dict(view_data), dict(view_group_by), dict(functions),
                    ))
                except (BrokenPipeError, OSError):
                    self._abort_locked(
                        "a worker process died before accepting work; "
                        "the pool will be restarted on next use"
                    )
                pending[conn].append(index)
            pending = {conn: owed for conn, owed in pending.items() if owed}
            partials: list = [None] * num_chunks
            while pending:
                for conn in _connection_wait(list(pending)):
                    try:
                        reply = conn.recv()
                    except (EOFError, OSError):
                        self._abort_locked(
                            "a worker process died mid-execution (partition "
                            "results lost); the pool will be restarted on "
                            "next use"
                        )
                    if reply[0] == "error":
                        self._abort_locked(
                            f"group execution failed in a worker:\n{reply[1]}"
                        )
                    owed = pending[conn]
                    partials[owed.pop(0)] = reply[1]
                    if not owed:
                        del pending[conn]
            return _tree_reduce(plan, partials)

    # ----------------------------------------------------------------- teardown
    def close(self) -> None:
        """Shut the pool down and unlink every segment (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._warmed.clear()
            self._pins.clear()
        self._finalizer()


def _tree_reduce(
    plan: MultiOutputPlan, partials: Sequence[dict]
) -> dict[str, dict]:
    """Pairwise merge of per-chunk partials, in partition order."""
    level = list(partials)
    while len(level) > 1:
        reduced = [
            merge_partial_outputs(plan, [level[i], level[i + 1]])
            for i in range(0, len(level) - 1, 2)
        ]
        if len(level) % 2:
            reduced.append(level[-1])
        level = reduced
    return level[0]
