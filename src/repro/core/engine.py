"""The LMFAO engine: batch in, all aggregate results out.

:class:`LMFAO` wires the three layers of the paper together:

1. **view generation** — join tree (built or supplied), per-query roots,
   aggregate pushdown, view merging (:mod:`repro.core.viewgen`);
2. **multi-output optimisation** — grouping, attribute orders, γ/β
   decomposition (:mod:`repro.core.groups`, :mod:`repro.core.orders`,
   :mod:`repro.core.decompose`);
3. **code generation** — one specialised function per group
   (:mod:`repro.core.codegen`), executed over the dependency DAG.

Per-query ``WHERE`` conjunctions are folded into the sum-product as
indicator factors — the trick that lets a batch of differently-filtered
decision-tree aggregates share a single scan. Predicates shared by *every*
query in a batch can optionally be pushed into physical filters on the base
relations instead (``push_shared_predicates``).

Every optimisation is individually switchable through
:class:`EngineConfig`, which is what the ablation benchmarks exercise.

Execution is **snapshot-isolated**: all trie/relation state lives in
immutable versioned :class:`~repro.core.snapshot.Snapshot` objects held by
a :class:`~repro.core.snapshot.SnapshotStore`; :meth:`LMFAO.run` pins the
version it started on, and incremental maintenance installs successor
versions atomically (:mod:`repro.incremental.maintain`), so queries never
observe a half-applied delta. The compile pipeline sits behind a
fingerprintable boundary: :class:`CompiledBatch` is pure structure, and a
:class:`PlanBinding` (built by :mod:`repro.serve.fingerprint`) re-binds
per-request predicate constants at execution time — the compile-once
serving layer (:mod:`repro.serve`) is built on exactly these two seams.
"""

from __future__ import annotations

import heapq
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from dataclasses import dataclass, field, replace

from repro.core import costmodel, topk
from repro.core.codegen import CompiledGroup, generate_group
from repro.core.decompose import decompose_group
from repro.core.groups import GroupPlan, build_groups
from repro.core.orders import GroupOrder, order_group
from repro.core.plan import MultiOutputPlan
from repro.core.snapshot import Snapshot, SnapshotStore
from repro.core.runtime import (
    debug_checks_enabled,
    execute_plan,
    execute_plan_partitioned,
    merge_partial_outputs,
    node_trie,
    partition_tries,
    prepare_bindings,
    trie_cache_key,
)
from repro.core.viewgen import ViewGenerator, ViewPlan
from repro.data.catalog import Database
from repro.data.relation import Relation
from repro.data.trie import TrieIndex
from repro.jointree.construction import build_join_tree
from repro.jointree.jointree import JoinTree
from repro.jointree.roots import assign_roots
from repro.query.aggregates import Aggregate, Factor
from repro.query.batch import QueryBatch
from repro.query.functions import Function
from repro.query.predicates import Predicate
from repro.query.query import Query, QueryResult
from repro.util.errors import PlanError
from repro.util.timer import Stopwatch


@dataclass(frozen=True)
class EngineConfig:
    """Engine options; the defaults are full-LMFAO.

    The dataclass itself is a plain frozen value; validation runs when a
    config reaches an engine — :meth:`validate` is called by
    ``LMFAO(...)`` and again by every ``compile()`` — except where a field
    says otherwise below. Every execution-affecting field also enters the
    plan-cache fingerprint of the serving layer
    (:func:`repro.serve.fingerprint.batch_fingerprint`): engines with
    different configs never share compiled artefacts.

    **Optimisation switches** (toggled by the ablation benchmarks,
    ``benchmarks/bench_ablation.py``; the first four are on by default and
    each ``=False`` disables one layer):

    ``merge_views`` (bool, default True)
        no value validation. ``False`` disables cross-query view merging —
        each query keeps its own views (paper §2.1/Figure 2: merged view
        DAG; §4 ablation);
    ``multi_output`` (bool, default True)
        no value validation. ``False`` means one group per view/output —
        no shared scans (paper §2.2: grouping views at a node; Figure 2's
        seven groups);
    ``factorize`` (bool, default True)
        no value validation. ``False`` disables γ/β sharing and pushdown —
        every term is evaluated at the deepest loop level of its artifact
        (paper §2.2/Figure 3: the α/β decomposition);
    ``share_scan_terms`` (bool, default True)
        no value validation. ``False`` disables hoisting of repeated term
        reads in the generated code — every γ/β update re-evaluates its
        trie/prefix-sum expressions (paper §2.3: code specialisation);
    ``push_shared_predicates`` (bool, default False)
        no value validation. ``True`` turns predicates common to *every*
        query of the batch into physical filters on the base relations
        instead of indicator factors (paper §3.2: decision-tree path
        conditions);
    ``single_root`` (str | None, default None)
        validated at ``compile()``: must be ``"auto"`` (pick the largest
        relation) or the name of a join-tree node, else
        :class:`~repro.util.errors.PlanError`. Forces every query onto one
        root — the paper's strawman of one rooted tree for the whole batch
        (§2.1, root assignment discussion).

    **Planning overrides:**

    ``root_override`` (dict[str, str] | None, default None)
        query name → join-tree node, pinning individual query roots;
        unknown node names are rejected by root assignment
        (:func:`repro.jointree.roots.assign_roots`) with a ``PlanError``.
        Remaining queries keep the cost-based assignment (paper §2.1:
        "we choose Sales as root for Q1 and Q2, Items for Q3");
    ``join_tree_edges`` (tuple[tuple[str, str], ...] | None, default None)
        explicit join-tree edge list instead of the constructed tree —
        how tests pin the paper's Figure 2 tree. Validated by the
        :class:`~repro.jointree.jointree.JoinTree` constructor (unknown
        relations, disconnected forests and running-intersection
        violations raise :class:`~repro.util.errors.SchemaError`).

    **Execution** (all validated by :meth:`validate`, with messages
    naming ``EngineConfig.<field>`` and the offending value):

    ``workers`` (int, default 1)
        must be an integer ≥ 1; 1 = sequential. The scheduler exploits
        **task parallelism** — independent groups of the dependency DAG
        run concurrently — and, combined with ``partitions``, **domain
        parallelism**: each large group fans out across trie partitions
        under the same shared worker budget (paper §2.3, §4);
    ``partitions`` (int, default 1)
        must be an integer ≥ 1; 1 = no domain parallelism. Number of
        disjoint level-0 trie partitions a group's scan is split into.
        Per-partition partial outputs are merged deterministically in
        partition order: per-key summation for accumulating emissions,
        disjoint concatenation for aligned ones. Takes effect for
        ``workers == 1`` too (serial partitioned execution), which keeps
        every configuration differentially testable against the
        sequential baseline;
    ``parallel_threshold`` (int, default 8192)
        must be an integer ≥ 0 (rows). Minimum number of trie rows before
        a group's scan fans out across partitions — small groups run
        unpartitioned to avoid per-partition overhead;
    ``backend`` (str, default "python")
        must be one of ``"python"`` (specialised Python over the trie
        runtime — the paper's generated C++ transposed to Python, §2.3),
        ``"numpy"`` (whole-level array programs over the same trie —
        segment-reduction sums, vectorized probes, CSR entry-list
        expansion for carried views; every plan shape runs natively, no
        fallback class), ``"c"`` (generated C compiled with gcc,
        per-group fallback to Python when a plan uses carried blocks or
        non-integer keys; ``compile()`` raises ``PlanError`` if gcc is
        missing), or ``"auto"`` (the cost model picks per group at
        execution time: tiny tries stay on interpreted Python, larger
        ones run compiled C when the group has a C implementation, else
        NumPy — see :func:`repro.core.costmodel.choose_backend`; gcc
        missing is not an error, the C candidates just stay absent).
        ``"auto"`` requires ``adaptive=True`` and the thread executor.
        The C backend's ctypes calls release the GIL and the generated
        functions are reentrant, so ``workers > 1`` gives real
        multicore scaling there; NumPy releases the GIL inside large
        kernels (partial scaling, no gcc needed); the Python backend
        stays GIL-serialised but goes through the same scheduler and
        merge paths;
    ``adaptive`` (bool, default True)
        no value validation (any truthy value works, but
        ``backend="auto"`` demands it on). ``True`` lets the cost model
        (:mod:`repro.core.costmodel`) treat ``partitions``, ``workers``
        and the NumPy grouping strategy as **advisory upper bounds**:
        partition fan-out is capped at the threads that can actually run
        concurrently, hash emissions switch to sort-based grouping when
        their keys are nearly unique, and ``backend="auto"`` picks a
        backend per group. ``False`` restores the literal static knobs
        (the ablation baseline). Adaptive decisions are data-dependent
        and re-decided per execution — they never enter compiled
        artefacts or the serving layer's structural fingerprints
        (:class:`EngineConfig` itself, including this flag, does);
    ``executor`` (str, default "thread")
        must be ``"thread"`` or ``"process"``. ``"thread"`` keeps both
        parallelism axes on the in-process thread pool (real scaling only
        where the backend releases the GIL). ``"process"`` routes domain
        parallelism to a persistent pool of worker processes
        (:mod:`repro.core.mpexec`): trie partitions travel as read-only
        ``multiprocessing.shared_memory`` segments (never pickled),
        workers recompile each batch's plans once per process, and
        partials merge local-combine-then-tree-reduce — bit-identical
        merge semantics to the sequential path. Groups that cannot ship
        (single partition, functions that are not transportable by name)
        transparently run in-process. Engines with ``executor="process"``
        own OS resources; call :meth:`LMFAO.close` (or use the engine as
        a context manager) to reclaim them deterministically.

    **Incremental maintenance** (see :meth:`LMFAO.maintain`; beyond the
    paper, which recomputes batches from scratch):

    ``incremental_mode`` (str, default "auto")
        validated at ``maintain()`` (not at engine construction): must be
        one of ``"numeric"`` (O(|Δ|) view deltas computed over a trie of
        just the changed tuples — insert-only changes at the group's own
        node — and a ``PlanError`` on deletes rather than a silent
        fallback), ``"rescan"`` (re-execute dirty groups over their
        cached full tries; bit-for-bit equal to recomputation), or
        ``"auto"`` (numeric where exact, rescan otherwise);
    ``incremental_cutoff`` (bool, default True)
        no value validation. ``False`` disables delta cutoff: downstream
        groups re-run even when a refreshed view turned out identical
        (ablation of the dirty-path scheduler).

    Examples
    --------
    Validation is eager and the error names the offending field::

        >>> EngineConfig(workers=0).validate()
        Traceback (most recent call last):
            ...
        repro.util.errors.PlanError: EngineConfig.workers must be an integer >= 1 (1 = sequential), got 0
        >>> EngineConfig(backend="rust").validate()
        Traceback (most recent call last):
            ...
        repro.util.errors.PlanError: EngineConfig.backend must be one of 'python', 'numpy', 'c', 'auto', got 'rust'
        >>> EngineConfig(partitions=4).validate().partitions
        4
    """

    merge_views: bool = True
    multi_output: bool = True
    factorize: bool = True
    share_scan_terms: bool = True
    push_shared_predicates: bool = False
    single_root: str | None = None
    root_override: dict[str, str] | None = None
    join_tree_edges: tuple[tuple[str, str], ...] | None = None
    workers: int = 1
    partitions: int = 1
    parallel_threshold: int = 8192
    backend: str = "python"
    executor: str = "thread"
    adaptive: bool = True
    incremental_mode: str = "auto"
    incremental_cutoff: bool = True

    def validate(self) -> "EngineConfig":
        """Reject nonsensical execution knobs, with actionable messages.

        Called by ``LMFAO(...)`` and ``compile()``; returns ``self`` so it
        chains. See the class docstring for the per-field rules.
        """
        _validate_execution_config(self)
        return self


@dataclass(frozen=True)
class PlanBinding:
    """Per-request constants bound to a structurally cached :class:`CompiledBatch`.

    Produced by :func:`repro.serve.fingerprint.bind_batch` when a
    plan-cache hit serves a batch that is structurally identical to the
    compiled one but differs in ``WHERE``-predicate constants. The
    compiled artefacts — view plan, groups, orders, generated code,
    native groups — are reused verbatim; everything constant-dependent is
    swapped at execution time through this object:

    ``batch``
        the *request* batch. Results are collected against its
        :class:`~repro.query.query.Query` objects (same names and
        group-bys as the compiled batch, by fingerprint equality), so the
        returned :class:`~repro.query.query.QueryResult`\\ s carry the
        request's predicates, not the cached batch's;
    ``functions``
        plan slot name → runtime :class:`~repro.query.functions.Function`.
        Keys are the *compiled* batch's function names (what the plan IR
        references); values are the request's functions — for an
        indicator slot ``ind[<=5]`` compiled from ``x <= 5``, a request
        with ``x <= 7`` binds the ``ind[<=7]`` function under the
        ``ind[<=5]`` key. Trie-side caches key on the *bound* function's
        own name, so re-bound constants never collide in shared caches
        (see :class:`repro.core.runtime.GroupEnvironment`);
    ``shared_predicates``
        the request's pushed-down predicate constants (only non-empty
        under ``push_shared_predicates=True``); the trie cache key
        includes their true values, so differently-filtered requests get
        distinct physical tries.
    """

    batch: QueryBatch
    functions: dict[str, Function]
    shared_predicates: tuple[Predicate, ...]


@dataclass
class CompiledBatch:
    """All artefacts of compiling one batch (inspectable, reusable).

    A compiled batch is **pure structure**: nothing in it depends on the
    database *contents* (only on schema, statistics-driven planning
    choices, and the batch's shape), so it can be executed against any
    :class:`~repro.core.snapshot.Snapshot` of the same schema — this is
    what lets the incremental maintainer re-drive groups over updated
    data, and what the serving layer's structural plan cache
    (:mod:`repro.serve`) exploits to reuse one compilation across
    requests, re-binding predicate constants via :class:`PlanBinding`.

    Field notes: ``batch`` is the original request; ``folded`` the same
    batch with non-shared predicates folded into indicator factors;
    ``execution_order`` a topological order of ``group_plan``'s
    dependency DAG; ``shared_predicates`` the predicates pushed into
    physical filters (empty unless ``push_shared_predicates``).
    """

    batch: QueryBatch
    folded: QueryBatch
    tree: JoinTree
    roots: dict[str, str]
    view_plan: ViewPlan
    group_plan: GroupPlan
    orders: list[GroupOrder]
    plans: list[MultiOutputPlan]
    code: list[CompiledGroup]
    functions: dict[str, Function]
    shared_predicates: tuple[Predicate, ...]
    execution_order: list[int]
    #: per-group native implementation — a C or NumPy compiled group, or
    #: None for the generated-Python backend — plus, for C, the shared
    #: library keeping the symbols alive.
    native_groups: list = field(default_factory=list)
    c_library: object | None = None
    #: under ``backend="auto"``: the per-group compiled-C candidates the
    #: cost model may pick over the NumPy groups in ``native_groups``
    #: (all None when gcc is unavailable or a plan is unsupported).
    c_groups: list = field(default_factory=list)

    @property
    def native_group_count(self) -> int:
        """How many groups run on a non-Python (C or NumPy) backend."""
        return sum(1 for g in self.native_groups if g is not None)

    @property
    def num_views(self) -> int:
        return self.view_plan.num_views

    @property
    def num_groups(self) -> int:
        return self.group_plan.num_groups

    def generated_source(self, group_index: int) -> str:
        """The generated Python for one group — the demo's code tab."""
        return self.code[group_index].source


@dataclass
class ViewSeeds:
    """Pre-materialized views seeded into one execution, plus a publish sink.

    Built by the serving layer from view-cache hits
    (:mod:`repro.serve.viewcache`): ``seeds`` maps view name → already
    computed ``ViewData`` for *this* compilation at *this* snapshot
    version. The engine skips every group whose produced views are all
    seeded (or otherwise unneeded) — a fully seeded subtree never
    touches a trie — and feeds seeded data to the groups that do run.
    Seeded containers are treated strictly read-only; every downstream
    path builds fresh containers (see
    :meth:`~repro.core.runtime.merge_partial_outputs` and the
    copy-on-write maintainer merges), so sharing one cached view across
    concurrent runs is safe.

    ``publish`` (optional) is called once per view the run *computed*
    (never for seeds echoed back) as ``publish(name, data)``, after all
    groups finish but while the run's snapshot pin is still held — the
    serving layer uses it to install fresh entries in the view cache.
    """

    seeds: dict[str, dict] = field(default_factory=dict)
    publish: object | None = None


@dataclass
class RunResult:
    """Results of one batch run plus instrumentation.

    ``results`` maps query name → :class:`~repro.query.query.QueryResult`;
    ``timings`` holds the phase laps (``compile`` — absent when a cached
    plan was executed directly — ``execute``, ``collect``) and
    ``group_times`` per-group wall-clock keyed by group name.
    ``snapshot_version`` records which database version the run was
    pinned to: every value read came from exactly that
    :class:`~repro.core.snapshot.Snapshot`, no matter what maintenance
    installed concurrently — the serving layer's isolation tests compare
    results against the per-version oracle through this field.
    """

    results: dict[str, QueryResult]
    compiled: CompiledBatch
    timings: dict[str, float]
    group_times: dict[str, float] = field(default_factory=dict)
    snapshot_version: int = 0
    #: per-group execution decisions the cost model made for this run
    #: (backend, partition count, grouping strategy per hash emission) —
    #: see :func:`repro.core.costmodel.group_decision`. Data-dependent
    #: observability only; never part of compiled artefacts.
    decisions: dict[str, dict] = field(default_factory=dict)
    #: names of groups skipped entirely because every view they produce
    #: was seeded from the view cache (empty without :class:`ViewSeeds`).
    #: Skipped groups have no ``group_times`` / ``decisions`` entries.
    skipped_groups: tuple[str, ...] = ()

    def __getitem__(self, query_name: str) -> QueryResult:
        return self.results[query_name]

    @property
    def total_time(self) -> float:
        return sum(self.timings.values())


class LMFAO:
    """The engine. Construct once per database; run many batches.

    Caches trie indexes (per node, attribute order and filter) and carries
    them across runs — the decision-tree workload recompiles aggregates per
    tree node but reuses every trie.

    All data state lives in an immutable versioned
    :class:`~repro.core.snapshot.Snapshot` behind a
    :class:`~repro.core.snapshot.SnapshotStore`: :meth:`run` pins the
    current version on entry and reads only from it, while incremental
    maintenance (:meth:`maintain`) installs successor versions atomically
    — concurrent queries never block behind maintenance and never observe
    a half-applied delta. ``engine.db`` always denotes the *current*
    version's database.
    """

    def __init__(self, db: Database, config: EngineConfig | None = None) -> None:
        self.config = config or EngineConfig()
        self.config.validate()
        if self.config.join_tree_edges is not None:
            self.tree = JoinTree(db.schema, list(self.config.join_tree_edges))
        else:
            self.tree = build_join_tree(db.schema)
        self._snapshots = SnapshotStore(Snapshot(version=0, db=db, tries={}))
        self._mpexec = None
        self._mpexec_lock = threading.Lock()
        # when a superseded version loses its last reader pin, drop its
        # shared-memory trie segments too (no-op for the thread executor).
        self._snapshots.add_reclaim_hook(self._reclaim_snapshot_version)

    # ----------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Release owned OS resources (idempotent; engine stays queryable).

        Only ``executor="process"`` engines hold any: the worker pool and
        its shared-memory segments. Unclosed engines are also reclaimed at
        garbage collection, but an explicit ``close()`` — or using the
        engine as a context manager — makes the teardown deterministic.
        """
        with self._mpexec_lock:
            executor, self._mpexec = self._mpexec, None
        if executor is not None:
            executor.close()

    def __enter__(self) -> "LMFAO":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _process_executor(self):
        """The lazily started multiprocess executor (``executor="process"``)."""
        with self._mpexec_lock:
            if self._mpexec is None:
                from repro.core import mpexec

                schema = self.db.schema
                self._mpexec = mpexec.ProcessExecutor(
                    workers=self.config.workers,
                    backend=self.config.backend,
                    adaptive=self.config.adaptive,
                    share_terms=self.config.share_scan_terms,
                    attribute_kinds={
                        attr: schema.attribute_kind(attr).value
                        for attr in schema.all_attributes
                    },
                )
            return self._mpexec

    @property
    def db(self) -> Database:
        """The current snapshot's database (advances under maintenance)."""
        return self._snapshots.current().db

    def snapshot(self) -> Snapshot:
        """Peek the current version: an immutable view of all data state.

        The returned object is safe to read for as long as the caller
        holds it (Python references keep it alive), but it does **not**
        hold a GC pin — use :meth:`pin_snapshot` when the version's
        auxiliary resources (shared-memory trie segments under
        ``executor="process"``) must survive concurrent commits.
        """
        return self._snapshots.current()

    def pin_snapshot(self) -> Snapshot:
        """Pin the current version against garbage collection.

        Every call must be paired with exactly one
        :meth:`release_snapshot` (pins are refcounted and nest).
        :meth:`execute` pins internally; the serving layer additionally
        pins across its async submission queue.
        """
        return self._snapshots.pin()

    def release_snapshot(self, version: int) -> None:
        """Release one :meth:`pin_snapshot` refcount; may trigger GC."""
        self._snapshots.unpin(version)

    def _reclaim_snapshot_version(self, version: int) -> None:
        """Snapshot-GC hook: unlink the dead version's shm segments."""
        with self._mpexec_lock:
            executor = self._mpexec
        if executor is not None:
            executor.drop_version(version)

    @property
    def _trie_cache(self) -> dict:
        """The current snapshot's trie memo (back-compat accessor)."""
        return self._snapshots.current().tries

    # ------------------------------------------------------------------ compile
    def compile(
        self, batch: QueryBatch, snapshot: Snapshot | None = None
    ) -> CompiledBatch:
        """Run all three optimisation layers; returns executable artefacts.

        ``snapshot`` pins the database version planning statistics come
        from (cardinalities, domain sizes for root assignment and
        attribute orders); default is the current version. :meth:`run`
        passes its pinned snapshot so planning and execution read the
        same version even under concurrent maintenance.
        """
        db = (snapshot or self._snapshots.current()).db
        batch.validate_against(db.schema)
        config = self.config
        config.validate()
        functions = _collect_functions(batch)

        shared: tuple[Predicate, ...] = ()
        if config.push_shared_predicates:
            shared = batch.shared_predicates()
        folded = _fold_predicates(batch, shared, functions)

        roots = self._assign_roots(folded, db)
        generator = ViewGenerator(
            db, self.tree, merge_across_queries=config.merge_views
        )
        view_plan = generator.generate(folded, roots)
        group_plan = build_groups(view_plan, multi_output=config.multi_output)

        orders: list[GroupOrder] = []
        plans: list[MultiOutputPlan] = []
        code: list[CompiledGroup] = []
        for group in group_plan.groups:
            order = order_group(group, view_plan, db)
            plan = decompose_group(group, order, factorize=config.factorize)
            orders.append(order)
            plans.append(plan)
            code.append(generate_group(plan, share_terms=config.share_scan_terms))

        native_groups: list = [None] * len(plans)
        c_groups: list = [None] * len(plans)
        c_library = None
        if config.backend == "c":
            native_groups, c_library = self._compile_native(plans)
        elif config.backend == "numpy":
            from repro.core import npbackend

            native_groups = npbackend.compile_numpy_groups(
                plans, adaptive=config.adaptive
            )
        elif config.backend == "auto":
            from repro.core import npbackend

            native_groups = npbackend.compile_numpy_groups(plans, adaptive=True)
            try:
                c_groups, c_library = self._compile_native(plans)
            except PlanError:
                # no gcc on this machine: auto degrades to python/numpy.
                c_groups = [None] * len(plans)

        execution_order = _topological_order(group_plan)
        return CompiledBatch(
            batch=batch,
            folded=folded,
            tree=self.tree,
            roots=roots,
            view_plan=view_plan,
            group_plan=group_plan,
            orders=orders,
            plans=plans,
            code=code,
            functions=functions,
            shared_predicates=shared,
            execution_order=execution_order,
            native_groups=native_groups,
            c_library=c_library,
            c_groups=c_groups,
        )

    def _compile_native(self, plans: list[MultiOutputPlan]):
        """Lower supported plans to C; unsupported ones stay on Python.

        Delegates to :func:`repro.core.cbackend.compile_c_groups` — the
        same entry point the multiprocess executor's per-worker warm-up
        uses, so parent and workers compile identical native groups.
        """
        from repro.core import cbackend

        kinds = {
            attr: self.db.schema.attribute_kind(attr).value
            for attr in self.db.schema.all_attributes
        }
        return cbackend.compile_c_groups(plans, kinds)

    # --------------------------------------------------------------------- run
    def run(self, batch: QueryBatch) -> RunResult:
        """Compile (if needed) and execute a batch.

        The snapshot is pinned *before* compilation: planning statistics
        and execution read the same database version even if maintenance
        installs a successor mid-run (the pin also keeps the version's
        shared-memory segments mapped until the run completes).
        """
        watch = Stopwatch()
        snapshot = self._snapshots.pin()
        try:
            with watch.lap("compile"):
                compiled = self.compile(batch, snapshot=snapshot)
            return self.execute(compiled, watch=watch, snapshot=snapshot)
        finally:
            self._snapshots.unpin(snapshot.version)

    # -------------------------------------------------------------- incremental
    def maintain(self, batch: QueryBatch):
        """Compile a batch once and keep its results maintained under updates.

        Returns a :class:`repro.incremental.MaintainedBatch` handle: the
        batch is compiled and executed once, then ``handle.apply(inserts=...,
        deletes=...)`` updates base relations and propagates deltas only
        through the affected views of the compiled DAG — no re-planning, no
        recompilation, no full rescans of untouched join-tree nodes. See
        ``incremental_mode`` / ``incremental_cutoff`` on
        :class:`EngineConfig` for the maintenance strategy switches.
        """
        from repro.incremental.maintain import MaintainedBatch

        return MaintainedBatch(self, self.compile(batch))

    def execute(
        self,
        compiled: CompiledBatch,
        watch: Stopwatch | None = None,
        snapshot: Snapshot | None = None,
        binding: PlanBinding | None = None,
        view_seeds: ViewSeeds | None = None,
    ) -> RunResult:
        """Execute an already compiled batch.

        ``snapshot`` pins the database version all reads come from
        (default: the current one — pinned here, once, so the run is
        isolated from concurrently installed versions either way).
        ``binding`` re-binds per-request predicate constants onto a
        structurally cached compilation (see :class:`PlanBinding`); when
        None the compiled batch executes with its own constants.
        ``view_seeds`` pre-materializes views from the serving layer's
        view cache (see :class:`ViewSeeds`): groups whose produced views
        are all seeded are skipped outright, and computed views are
        published back through ``view_seeds.publish``.

        The executed version is pinned for the duration (a caller-supplied
        snapshot gains a nested pin), so snapshot GC can never reclaim it
        — or unlink its shared-memory segments — mid-run.
        """
        watch = watch or Stopwatch()
        config = self.config
        if snapshot is None:
            snapshot = self._snapshots.pin()
        else:
            self._snapshots.repin(snapshot)
        try:
            return self._execute_pinned(
                compiled, watch, snapshot, binding, config, view_seeds
            )
        finally:
            self._snapshots.unpin(snapshot.version)

    @staticmethod
    def _skippable_groups(
        compiled: CompiledBatch, seeds: dict[str, dict]
    ) -> set[int]:
        """Group indices a seeded execution can skip entirely.

        Walked in *reverse* execution order so consumers are decided
        before their producers: a group must run iff it produces a query
        (queries are never cached) or a view some running consumer needs
        and the seeds do not provide; everything else is skipped. A
        partial hit therefore prunes exactly the seeded subtrees.
        """
        skipped: set[int] = set()
        needed: set[str] = set()
        for index in reversed(compiled.execution_order):
            plan = compiled.plans[index]
            if plan.produced_queries or any(
                name in needed for name in plan.produced_views
            ):
                needed.update(
                    name for name in plan.consumed_views if name not in seeds
                )
            else:
                skipped.add(index)
        return skipped

    def _execute_pinned(
        self,
        compiled: CompiledBatch,
        watch: Stopwatch,
        snapshot: Snapshot,
        binding: PlanBinding | None,
        config: EngineConfig,
        view_seeds: ViewSeeds | None = None,
    ) -> RunResult:
        if binding is not None:
            functions = binding.functions
            shared = binding.shared_predicates
            batch = binding.batch
        else:
            functions = compiled.functions
            shared = compiled.shared_predicates
            batch = compiled.batch
        group_times: dict[str, float] = {}
        decisions: dict[str, dict] = {}
        concurrency = self._partition_concurrency()
        view_data: dict[str, dict] = {}
        view_group_by = {
            name: view.group_by for name, view in compiled.view_plan.views.items()
        }
        query_raw: dict[str, dict] = {}
        seeds: dict[str, dict] = view_seeds.seeds if view_seeds is not None else {}
        skipped: set[int] = set()
        if seeds:
            view_data.update(seeds)
            skipped = self._skippable_groups(compiled, seeds)

        def store_outputs(index: int, outputs: dict[str, dict]) -> None:
            for emission in compiled.plans[index].emissions:
                if emission.kind == "view":
                    view_data[emission.artifact] = outputs[emission.artifact]
                else:
                    query_raw[emission.artifact] = outputs[emission.artifact]

        with watch.lap("execute"):
            if config.executor == "process" and (
                config.workers > 1 or config.partitions > 1
            ):
                self._run_process(
                    compiled, view_data, view_group_by, store_outputs,
                    group_times, snapshot, functions, shared, decisions,
                    skipped,
                )
            elif config.workers > 1:
                self._run_parallel(
                    compiled, view_data, view_group_by, store_outputs,
                    group_times, snapshot, functions, shared, decisions,
                    skipped,
                )
            else:
                for index in compiled.execution_order:
                    if index in skipped:
                        continue
                    group = compiled.group_plan.groups[index]
                    plan = compiled.plans[index]
                    start = time.perf_counter()
                    trie = self._trie(plan.node, plan.order, shared, snapshot)
                    native, backend = self._select_native(
                        compiled, index, trie.num_rows
                    )
                    tries = partition_tries(
                        plan, trie, config.partitions,
                        config.parallel_threshold, concurrency,
                    )
                    decisions[group.name] = costmodel.group_decision(
                        plan, trie, backend=backend, partitions=len(tries),
                        adaptive=config.adaptive,
                    )
                    outputs = execute_plan_partitioned(
                        compiled.code[index],
                        native,
                        plan,
                        tries,
                        view_data,
                        view_group_by,
                        functions,
                    )
                    store_outputs(index, outputs)
                    group_times[group.name] = time.perf_counter() - start

        if view_seeds is not None and view_seeds.publish is not None:
            # still inside the run's snapshot pin: the version (and its
            # auxiliary resources) cannot be reclaimed mid-publish.
            for name, data in view_data.items():
                if seeds.get(name) is not data:
                    view_seeds.publish(name, data)

        with watch.lap("collect"):
            results: dict[str, QueryResult] = {}
            producers: dict[str, str] | None = None
            for query in batch:
                raw = query_raw[query.name]
                if query.order_by is not None:
                    # ordered queries finish here — once, over the full
                    # merged raw groups — and the kernel choice lands in
                    # the producing group's decision record (queries are
                    # never seeded, so that group always executed).
                    groups, strategy = topk.finish_ordered(query, raw)
                    results[query.name] = QueryResult(query=query, groups=groups)
                    if producers is None:
                        producers = _query_producers(compiled)
                    entry = decisions.get(producers.get(query.name))
                    if entry is not None:
                        entry.setdefault("topk", {})[query.name] = strategy
                else:
                    results[query.name] = _to_query_result(query, raw)
        run = RunResult(
            results=results,
            compiled=compiled,
            timings=watch.laps,
            group_times=group_times,
            snapshot_version=snapshot.version,
            decisions=decisions,
            skipped_groups=tuple(
                compiled.group_plan.groups[index].name for index in sorted(skipped)
            ),
        )
        if debug_checks_enabled():
            _debug_check_run_consistency(batch, run)
        return run

    # ------------------------------------------------------------------ helpers
    def _assign_roots(self, batch: QueryBatch, db: Database) -> dict[str, str]:
        config = self.config
        if config.single_root is not None:
            root = config.single_root
            if root == "auto":
                root = max(self.tree.nodes, key=db.cardinality)
            if root not in self.tree.nodes:
                raise PlanError(
                    f"EngineConfig.single_root {root!r} is not a join-tree node"
                )
            return {query.name: root for query in batch}
        return assign_roots(db, self.tree, batch, override=config.root_override)

    def _trie(
        self,
        node: str,
        order: tuple[str, ...],
        shared: tuple[Predicate, ...],
        snapshot: Snapshot,
    ) -> TrieIndex:
        return node_trie(snapshot.db, node, order, shared, snapshot.tries)

    def _partition_concurrency(self) -> int | None:
        """The concurrency cap :func:`partition_tries` should respect, or
        None under ``adaptive=False`` (literal static fan-out)."""
        if not self.config.adaptive:
            return None
        return costmodel.effective_concurrency(self.config)

    def _select_native(self, compiled: CompiledBatch, index: int, rows: int):
        """One group's native implementation and the backend name it runs.

        Static backends return the compiled batch's artefact verbatim
        (``None`` = generated Python, also the C backend's per-plan
        fallback); ``backend="auto"`` asks the cost model to pick per
        group from the trie's row count — interpreted Python for tiny
        tries, compiled C when this group has a C candidate, else NumPy.
        """
        config = self.config
        if config.backend == "auto":
            c_group = compiled.c_groups[index] if compiled.c_groups else None
            choice = costmodel.choose_backend(rows, c_group is not None)
            if choice == "c":
                return c_group, "c"
            if choice == "numpy":
                return compiled.native_groups[index], "numpy"
            return None, "python"
        native = compiled.native_groups[index] if compiled.native_groups else None
        return native, (config.backend if native is not None else "python")

    def _run_process(
        self,
        compiled: CompiledBatch,
        view_data: dict,
        view_group_by: dict,
        store_outputs,
        group_times: dict[str, float],
        snapshot: Snapshot,
        functions: dict[str, Function],
        shared: tuple[Predicate, ...],
        decisions: dict[str, dict],
        skipped: set[int] = frozenset(),
    ) -> None:
        """Domain parallelism across worker processes (``executor="process"``).

        Groups run in dependency order on this thread; each group that
        partitions fans its trie partitions out to the multiprocess pool
        via snapshot-pinned shared-memory segments
        (:mod:`repro.core.mpexec`). A group stays in-process when it does
        not partition (below threshold, unsafe merge, single level-0 run)
        or references functions that cannot travel by name — both produce
        bit-identical results to the shipped path, so the fallback is
        purely a performance decision. The snapshot version is retained
        for the whole run: concurrent maintenance installing successors
        can never unlink a segment a worker still maps.
        """
        config = self.config
        concurrency = self._partition_concurrency()
        executor = self._process_executor()
        executor.retain(snapshot.version)
        try:
            for index in compiled.execution_order:
                if index in skipped:
                    continue
                group = compiled.group_plan.groups[index]
                plan = compiled.plans[index]
                start = time.perf_counter()
                trie = self._trie(plan.node, plan.order, shared, snapshot)
                tries = partition_tries(
                    plan, trie, config.partitions,
                    config.parallel_threshold, concurrency,
                )
                decisions[group.name] = costmodel.group_decision(
                    plan, trie,
                    backend=self._select_native(compiled, index, trie.num_rows)[1],
                    partitions=len(tries),
                    adaptive=config.adaptive,
                )
                outputs = self._execute_group_partitioned(
                    compiled, index, tries, view_data, view_group_by,
                    functions, snapshot=snapshot, shared=shared,
                )
                store_outputs(index, outputs)
                group_times[group.name] = time.perf_counter() - start
        finally:
            executor.release(snapshot.version)

    def _execute_group_partitioned(
        self,
        compiled: CompiledBatch,
        index: int,
        tries,
        view_data: dict,
        view_group_by: dict,
        functions: dict[str, Function],
        snapshot: Snapshot | None = None,
        shared: tuple[Predicate, ...] = (),
    ) -> dict[str, dict]:
        """One group over pre-partitioned tries — the single offload point.

        Ships the partitions to the process pool when ``executor="process"``,
        the trie actually split, the plan's functions travel by name, and a
        snapshot identifies the segment (version + trie cache key);
        otherwise runs in-process via :func:`execute_plan_partitioned`.
        Both :meth:`execute` and the incremental maintainer
        (:meth:`repro.incremental.maintain.MaintainedBatch._execute`) come
        through here, so the two always take the same path per plan and the
        merged float association is identical — a maintained rescan stays
        bit-identical to a from-scratch run under the same config.
        """
        from repro.core import mpexec

        plan = compiled.plans[index]
        native, _backend = self._select_native(
            compiled, index, sum(t.num_rows for t in tries)
        )
        if (
            snapshot is not None
            and self.config.executor == "process"
            and len(tries) > 1
            and mpexec.plan_transportable(plan, functions)
        ):
            executor = self._process_executor()
            executor.retain(snapshot.version)
            try:
                export = executor.export(
                    snapshot.version,
                    trie_cache_key(snapshot.db, plan.node, plan.order, shared),
                    tries,
                )
                needed_views = {b.view for b in plan.bindings}
                return executor.execute_group(
                    compiled,
                    index,
                    export,
                    {v: view_data[v] for v in needed_views if v in view_data},
                    {v: view_group_by[v] for v in needed_views},
                    {
                        name: functions[name]
                        for name in mpexec.plan_function_names(plan)
                    },
                )
            finally:
                executor.release(snapshot.version)
        return execute_plan_partitioned(
            compiled.code[index],
            native,
            plan,
            tries,
            view_data,
            view_group_by,
            functions,
        )

    def _run_parallel(
        self,
        compiled: CompiledBatch,
        view_data: dict,
        view_group_by: dict,
        store_outputs,
        group_times: dict[str, float],
        snapshot: Snapshot,
        functions: dict[str, Function],
        shared: tuple[Predicate, ...],
        decisions: dict[str, dict],
        skipped: set[int] = frozenset(),
    ) -> None:
        """Event-driven scheduler over both parallelism axes.

        **Task parallelism**: a group is launched as soon as its
        dependencies complete. **Domain parallelism**: a launched group
        first runs a *prepare* task (trie build + partitioning + one-time
        view marshalling), then one task per trie partition; its partial
        outputs are merged in partition order on the scheduler thread.
        All tasks — prepare and partition, across all in-flight groups —
        share one ``workers``-sized pool, and no task ever blocks on
        another, so the pool cannot deadlock. The scheduler itself sleeps
        in :func:`concurrent.futures.wait` (no busy-wait polling); when a
        group completes, only its **consumers** (from the inverted
        dependency index) are re-checked for launch — no full rescan of
        all groups per wake-up — and any task exception propagates out of
        the run immediately, cancelling work that has not started.
        """
        config = self.config
        num_groups = compiled.num_groups
        remaining = {
            i: set(compiled.group_plan.dependencies.get(i, ()))
            for i in range(num_groups)
        }
        consumers = _consumers_index(compiled.group_plan)
        # seeded-skip groups count as done from the start: their outputs
        # are already in view_data, so consumers may launch over them.
        done: set[int] = set(skipped)
        launched: set[int] = set(skipped)
        pending: dict = {}  # Future -> ("prepare", index, None) | ("part", index, p)
        partial: dict[int, list] = {}  # index -> per-partition outputs
        outstanding: dict[int, int] = {}  # index -> partitions still running
        started: dict[int, float] = {}

        concurrency = self._partition_concurrency()

        def prepare(index: int):
            started[index] = time.perf_counter()
            plan = compiled.plans[index]
            trie = self._trie(plan.node, plan.order, shared, snapshot)
            native, backend = self._select_native(compiled, index, trie.num_rows)
            tries = partition_tries(
                plan, trie, config.partitions,
                config.parallel_threshold, concurrency,
            )
            # distinct key per group; plain dict assignment is safe across
            # the pool's threads.
            decisions[compiled.group_plan.groups[index].name] = (
                costmodel.group_decision(
                    plan, trie, backend=backend, partitions=len(tries),
                    adaptive=config.adaptive,
                )
            )
            prepared = None
            if len(tries) > 1:
                prepared = prepare_bindings(native, plan, view_data, view_group_by)
            return native, tries, prepared

        def run_partition(index: int, native, trie, prepared):
            return execute_plan(
                compiled.code[index],
                native,
                compiled.plans[index],
                trie,
                view_data,
                view_group_by,
                functions,
                prepared_bindings=prepared,
            )

        pool = ThreadPoolExecutor(max_workers=config.workers)

        def launch(index: int) -> None:
            launched.add(index)
            pending[pool.submit(prepare, index)] = ("prepare", index, None)

        try:
            for index in range(num_groups):
                if index not in launched and remaining[index] <= done:
                    launch(index)
            while len(done) < num_groups:
                if not pending:
                    raise PlanError("group dependency graph is not schedulable")
                ready, _ = wait(set(pending), return_when=FIRST_COMPLETED)
                for future in ready:
                    kind, index, part = pending.pop(future)
                    if kind == "prepare":
                        native, tries, prepared = future.result()
                        partial[index] = [None] * len(tries)
                        outstanding[index] = len(tries)
                        for p, trie in enumerate(tries):
                            task = pool.submit(
                                run_partition, index, native, trie, prepared
                            )
                            pending[task] = ("part", index, p)
                        continue
                    partial[index][part] = future.result()
                    outstanding[index] -= 1
                    if outstanding[index]:
                        continue
                    outputs = merge_partial_outputs(
                        compiled.plans[index], partial.pop(index)
                    )
                    del outstanding[index]
                    store_outputs(index, outputs)
                    group_times[compiled.group_plan.groups[index].name] = (
                        time.perf_counter() - started[index]
                    )
                    done.add(index)
                    for consumer in consumers.get(index, ()):
                        if consumer not in launched and remaining[consumer] <= done:
                            launch(consumer)
        except BaseException:
            # Drop every half-merged partial so nothing incomplete can
            # reach store_outputs, then cancel all queued tasks and wait
            # out the running ones — ``cancel_futures`` covers tasks a
            # worker thread may still be submitting results for, so the
            # raise below never leaves the pool accepting work.
            partial.clear()
            outstanding.clear()
            raise
        finally:
            pool.shutdown(wait=True, cancel_futures=True)


# ------------------------------------------------------------------ module fns


def _validate_execution_config(config: EngineConfig) -> None:
    """Reject nonsensical execution knobs up front, with actionable messages."""
    if not isinstance(config.workers, int) or config.workers < 1:
        raise PlanError(
            f"EngineConfig.workers must be an integer >= 1 "
            f"(1 = sequential), got {config.workers!r}"
        )
    if not isinstance(config.partitions, int) or config.partitions < 1:
        raise PlanError(
            f"EngineConfig.partitions must be an integer >= 1 "
            f"(1 = no domain parallelism), got {config.partitions!r}"
        )
    if not isinstance(config.parallel_threshold, int) or config.parallel_threshold < 0:
        raise PlanError(
            f"EngineConfig.parallel_threshold must be an integer >= 0 rows, "
            f"got {config.parallel_threshold!r}"
        )
    if config.backend not in {"python", "numpy", "c", "auto"}:
        raise PlanError(
            f"EngineConfig.backend must be one of 'python', 'numpy', 'c', "
            f"'auto', got {config.backend!r}"
        )
    if config.executor not in {"thread", "process"}:
        raise PlanError(
            f"EngineConfig.executor must be one of 'thread', 'process', "
            f"got {config.executor!r}"
        )
    if config.backend == "auto" and not config.adaptive:
        raise PlanError(
            "EngineConfig.backend='auto' is a cost-model decision and "
            "requires adaptive=True"
        )
    if config.backend == "auto" and config.executor == "process":
        raise PlanError(
            "EngineConfig.backend='auto' is not available with "
            "executor='process' (worker processes warm one backend per "
            "batch); pick an explicit backend"
        )


def _collect_functions(batch: QueryBatch) -> dict[str, Function]:
    functions: dict[str, Function] = {}
    for query in batch:
        for aggregate in query.aggregates:
            for factor in aggregate.factors:
                functions.setdefault(factor.function.name, factor.function)
    return functions


def _fold_predicates(
    batch: QueryBatch,
    shared: tuple[Predicate, ...],
    functions: dict[str, Function],
) -> QueryBatch:
    """Fold non-shared WHERE predicates into indicator factors."""
    shared_sigs = {p.signature for p in shared}
    queries: list[Query] = []
    for query in batch:
        remaining = [p for p in query.where if p.signature not in shared_sigs]
        if not remaining:
            queries.append(
                query if not query.where else replace(query, where=tuple())
            )
            continue
        indicator_factors = []
        for predicate in remaining:
            fn = predicate.as_indicator()
            fn = functions.setdefault(fn.name, fn)
            indicator_factors.append(Factor(predicate.attribute, fn))
        new_aggs = tuple(
            Aggregate(agg.factors + tuple(indicator_factors))
            for agg in query.aggregates
        )
        queries.append(replace(query, aggregates=new_aggs, where=()))
    return QueryBatch(queries)


def _consumers_index(group_plan: GroupPlan) -> dict[int, list[int]]:
    """Inverted dependency map: producer group -> its consumer groups."""
    consumers: dict[int, list[int]] = {}
    for consumer, producers in group_plan.dependencies.items():
        for producer in producers:
            consumers.setdefault(producer, []).append(consumer)
    return consumers


def _topological_order(group_plan: GroupPlan) -> list[int]:
    indegree = {
        i: len(group_plan.dependencies.get(i, ())) for i in range(group_plan.num_groups)
    }
    consumers = _consumers_index(group_plan)
    # heapq keeps deterministic smallest-index-first order without the
    # O(n²) of list.pop(0) on wide DAGs.
    ready = [i for i, d in indegree.items() if d == 0]
    heapq.heapify(ready)
    order: list[int] = []
    while ready:
        index = heapq.heappop(ready)
        order.append(index)
        for consumer in consumers.get(index, ()):
            indegree[consumer] -= 1
            if indegree[consumer] == 0:
                heapq.heappush(ready, consumer)
    if len(order) != group_plan.num_groups:
        raise PlanError("cyclic group dependencies — grouping bug")
    return order


def _to_query_result(query: Query, raw: dict) -> QueryResult:
    """Finish one query's raw group store into its published result.

    This is the single seam where ordered queries are ranked and
    truncated (see :mod:`repro.core.topk`) — both the engine's collect
    phase and the incremental maintainer's result refresh go through it,
    so ordered results are bit-identical no matter which path produced
    the raw store.
    """
    if query.order_by is not None:
        groups, _strategy = topk.finish_ordered(query, raw)
        return QueryResult(query=query, groups=groups)
    groups: dict[tuple, tuple[float, ...]] = {}
    for key, values in raw.items():
        if not isinstance(key, tuple):
            key = (key,)
        groups[key] = tuple(float(v) for v in values)
    return QueryResult(query=query, groups=groups)


def _query_producers(compiled: CompiledBatch) -> dict[str, str]:
    """Map query name -> name of the group whose plan emits it."""
    producers: dict[str, str] = {}
    for index, plan in enumerate(compiled.plans):
        group_name = compiled.group_plan.groups[index].name
        for query_name in plan.produced_queries:
            producers[query_name] = group_name
    return producers


def _debug_check_run_consistency(batch: QueryBatch, run: RunResult) -> None:
    """LMFAO_DEBUG invariants tying decisions/timings/skips together.

    Every executed group must have exactly one decision record and one
    wall-clock entry; skipped groups must have neither; and every ordered
    query must have its top-k kernel choice recorded under its producing
    group (queries are never view-cache seeded, so the producer ran).
    """
    all_groups = {g.name for g in run.compiled.group_plan.groups}
    skipped = set(run.skipped_groups)
    executed = all_groups - skipped
    assert skipped <= all_groups, (
        f"skipped_groups {sorted(skipped - all_groups)} not in the plan"
    )
    assert set(run.decisions) == executed, (
        f"decision records diverge from executed groups: "
        f"{sorted(set(run.decisions) ^ executed)}"
    )
    assert set(run.group_times) == executed, (
        f"group_times diverge from executed groups: "
        f"{sorted(set(run.group_times) ^ executed)}"
    )
    producers = _query_producers(run.compiled)
    for query in batch:
        if query.order_by is None:
            continue
        producer = producers.get(query.name)
        assert producer in executed, (
            f"ordered query {query.name} has no executed producer group"
        )
        recorded = run.decisions[producer].get("topk", {}).get(query.name)
        assert recorded in (costmodel.STRATEGY_HEAP, costmodel.STRATEGY_SORT), (
            f"ordered query {query.name} missing top-k strategy in "
            f"decisions[{producer!r}]: {recorded!r}"
        )
