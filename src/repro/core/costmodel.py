"""Cost-based adaptive execution decisions (trie statistics → strategy).

The engine's execution knobs — ``partitions``, ``backend``, and the
grouping strategy behind every hash emission — used to be applied
verbatim from :class:`~repro.core.engine.EngineConfig`, which produced
two recorded performance bugs (BENCH_parallel.json): ``partitions=4``
made the NumPy backend *slower* than sequential on a machine with one
usable core, and carried-heavy plans lost most of their vectorisation
win to dense-key grouping over high-cardinality keys. This module is the
paper-faithful fix: LMFAO's thesis is picking the right execution
strategy *per aggregate*, so the knobs become **advisory upper bounds**
and a small cost model — fed only by statistics the engine already has,
namely trie level geometry — makes the final call per group and per
emission.

Decision table (see docs/architecture.md §Lowering IR & cost model):

====================  ====================================================
decision              rule
====================  ====================================================
partition count       ``min(config.partitions, rows // threshold,
                      concurrency)`` — at least ``threshold`` rows *per
                      partition* and never more partitions than threads
                      that can actually run them (``threshold == 0``
                      disables the model: forced fan-out, used by the
                      differential test grids);
concurrency           1 when the backend is GIL-bound under the thread
                      executor (pure Python), else
                      ``min(workers, usable cores)``;
group-by strategy     per hash emission: **sort** (packed value sort +
                      reduceat) when the estimated distinct-key count is
                      a large fraction of the grouped items **and** the
                      composite code space exceeds the dense
                      presence-scan regime (nearly-unique wide keys:
                      hash degrades to a full ``np.unique`` sort there);
                      **hash** (dense-key bincount) everywhere else —
                      the crossover the hash-vs-sort empirical study
                      (arXiv 2411.13245) reports, calibrated against
                      the grouper microbenchmarks;
backend (``"auto"``)  per group: tiny tries stay on interpreted Python
                      (staging overhead dominates), otherwise C when a
                      compiled group exists, else NumPy.
====================  ====================================================

All decisions are **data-dependent and re-decided at execution time**,
like re-bound predicate constants — they never enter compiled artefacts
or the serving layer's structural fingerprints.

``LMFAO_FORCE_STRATEGY=hash|sort|auto`` overrides the per-emission
strategy globally (test hook: the bit-exactness grids force both paths
and assert identical outputs).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

from repro.core.lowering import MODE_HASH, base_emission_mode
from repro.core.plan import Emission, MultiOutputPlan
from repro.util.errors import PlanError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine imports us)
    from repro.core.engine import EngineConfig
    from repro.data.trie import TrieIndex

#: env var forcing the grouping strategy of every hash emission (also
#: accepts ``heap``/``sort`` to force the ordered-emission finishing
#: kernel, so one CI matrix axis drives both grids).
FORCE_STRATEGY_ENV = "LMFAO_FORCE_STRATEGY"

#: env var forcing the ordered-emission (top-k) finishing kernel alone;
#: takes precedence over :data:`FORCE_STRATEGY_ENV` for that decision.
FORCE_TOPK_ENV = "LMFAO_FORCE_TOPK"

#: below this many trie rows a group stays on interpreted Python under
#: ``backend="auto"`` — array-program staging costs more than the loop.
SMALL_TRIE_ROWS = 2048

#: sort-based grouping wins once estimated distinct keys exceed this
#: fraction of the grouped items (nearly-unique keys); hash-flavoured
#: dense-code bincount wins below it (heavy key repetition).
SORT_DISTINCT_FRACTION = 0.25

#: the hash grouper's dense presence scan applies while the composite
#: code space stays within this factor of the item count (mirrors
#: ``npbackend._group_codes``); inside that regime hash always wins, so
#: sort is only considered beyond it (where hash degrades to an
#: ``np.unique`` full sort without the sort path's cheap permutation).
DENSE_SPACE_FACTOR = 4

#: sorting arrays this small is never worth deciding about; stay on hash.
MIN_SORT_ITEMS = 1024

STRATEGY_HASH = "hash"
STRATEGY_SORT = "sort"
STRATEGY_HEAP = "heap"
_VALID_FORCE = {STRATEGY_HASH, STRATEGY_SORT, STRATEGY_HEAP, "auto", ""}
_VALID_FORCE_TOPK = {STRATEGY_HEAP, STRATEGY_SORT, "auto", ""}

#: sort-based finishing wins once ``k`` covers this fraction of the
#: grouped items — below it the bounded-heap selection's ``O(n)`` pass
#: beats the full ``O(n log n)`` sort (see docs/architecture.md
#: §Ordered emissions).
TOPK_HEAP_FRACTION = 0.25


def forced_strategy() -> str | None:
    """The ``LMFAO_FORCE_STRATEGY`` grouping override, or None when
    unset/auto. ``'heap'`` is a valid value but forces only the ordered
    finishing kernel (:func:`topk_strategy`), never grouping."""
    raw = os.environ.get(FORCE_STRATEGY_ENV, "")
    if raw not in _VALID_FORCE:
        raise PlanError(
            f"{FORCE_STRATEGY_ENV} must be 'hash', 'sort', 'heap' or "
            f"'auto', got {raw!r}"
        )
    return raw if raw in {STRATEGY_HASH, STRATEGY_SORT} else None


def forced_topk() -> str | None:
    """The forced ordered-finishing kernel, or None when unset/auto.

    ``LMFAO_FORCE_TOPK=heap|sort`` pins the kernel directly;
    ``LMFAO_FORCE_STRATEGY=heap|sort`` pins it too (one CI axis forces
    both the grouping and finishing grids), with the dedicated variable
    taking precedence. Invalid values fail fast, mirroring
    :func:`forced_strategy`.
    """
    raw = os.environ.get(FORCE_TOPK_ENV, "")
    if raw not in _VALID_FORCE_TOPK:
        raise PlanError(
            f"{FORCE_TOPK_ENV} must be 'heap', 'sort' or 'auto', got {raw!r}"
        )
    if raw in {STRATEGY_HEAP, STRATEGY_SORT}:
        return raw
    shared = os.environ.get(FORCE_STRATEGY_ENV, "")
    if shared in {STRATEGY_HEAP, STRATEGY_SORT}:
        return shared
    return None


def topk_strategy(limit: int | None, items: int) -> str:
    """``'heap'`` or ``'sort'`` for finishing one ordered emission.

    ``items`` is the full grouped-row count the finisher ranks over (the
    *group size* of the raw output — known exactly at finish time, not
    estimated). Bounded-heap selection wins while ``k`` stays a small
    fraction (:data:`TOPK_HEAP_FRACTION`) of the items; a full sort wins
    when ``k`` approaches the input or there is no cut at all
    (``limit is None``: every row survives, ranked). Both kernels
    realise the same deterministic total order, so the choice is purely
    a cost decision — forced both ways by the ordered differential
    grids via :func:`forced_topk`.
    """
    forced = forced_topk()
    if forced is not None:
        return forced
    if limit is None or items <= MIN_SORT_ITEMS // 8:
        return STRATEGY_SORT
    if limit <= TOPK_HEAP_FRACTION * items:
        return STRATEGY_HEAP
    return STRATEGY_SORT


def usable_cores() -> int:
    """CPU cores this process may actually run on (affinity-aware)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


# --------------------------------------------------------------- statistics


@dataclass(frozen=True)
class TrieStats:
    """The cheap statistics every decision reads: row count, per-level
    run counts (run count at level *k* = distinct length-(k+1) prefixes,
    an upper bound on the level attribute's distinct values), and
    per-level integer value spans (``max - min + 1``; None for float
    levels, whose code space is effectively unbounded). Runs bound the
    *distinct-key* estimate; spans bound the *dense code space* the hash
    grouper would have to scan."""

    rows: int
    level_runs: tuple[int, ...]
    level_spans: tuple[int | None, ...] | None = None

    @classmethod
    def from_trie(cls, trie: "TrieIndex") -> "TrieStats":
        spans = []
        for k in range(len(trie.order)):
            values = trie.level(k).values
            if values.dtype.kind in "iu" and len(values):
                spans.append(int(values.max()) - int(values.min()) + 1)
            elif len(values):
                spans.append(None)
            else:
                spans.append(1)
        return cls(
            rows=trie.num_rows,
            level_runs=tuple(
                trie.level(k).num_runs for k in range(len(trie.order))
            ),
            level_spans=tuple(spans),
        )

    def runs(self, level: int) -> int:
        if level < 0 or level >= len(self.level_runs):
            return 1
        return self.level_runs[level]

    def span(self, level: int) -> int | None:
        """Dense-code span of the level attribute (None = unbounded)."""
        if self.level_spans is None:
            return None
        if level < 0 or level >= len(self.level_spans):
            return 1
        return self.level_spans[level]


# ------------------------------------------------------------- partitioning


def effective_partitions(
    rows: int, partitions: int, threshold: int, concurrency: int | None = None
) -> int:
    """How many partitions a scan should actually fan out into.

    ``partitions`` is the config's advisory upper bound. ``threshold``
    is re-interpreted as minimum rows *per partition* (the old gate
    compared it against total rows, so a 10k-row trie at the default
    8192 threshold still split four ways and paid 4× staging overhead
    for ~2.5k-row slices). ``concurrency`` caps the fan-out at the
    number of threads that can actually run concurrently — partitioning
    beyond it only adds merge work (the recorded 0.20s → 0.53s numpy
    regression: 4 partitions on one usable core).

    ``threshold == 0`` is the explicit escape hatch: forced fan-out with
    no downgrades, preserving the differential grids and benchmarks that
    pin it to exercise partitioned code paths on any machine.
    """
    if partitions <= 1:
        return 1
    if threshold <= 0:
        return partitions
    k = min(partitions, rows // threshold)
    if concurrency is not None:
        k = min(k, max(1, concurrency))
    return max(1, k)


def effective_concurrency(config: "EngineConfig") -> int:
    """Threads that can make simultaneous progress under this config.

    Pure-Python execution under the thread executor is GIL-serialised —
    partitioning it can only lose. The C and NumPy backends release the
    GIL inside native calls / large kernels, and the process executor
    sidesteps it entirely; they scale up to ``min(workers, cores)``.
    """
    if config.executor == "thread" and config.backend == "python":
        return 1
    return min(max(1, config.workers), usable_cores())


# --------------------------------------------------------- emission strategy


def emission_strategy(emission: Emission, stats: TrieStats) -> str:
    """``'hash'`` or ``'sort'`` for one emission's grouped accumulation.

    Only hash-mode emissions group at all; aligned and scalar emissions
    always report ``'hash'`` (a no-op for them). Sort needs **both** of
    (arXiv 2411.13245's criteria, calibrated against the grouper
    microbenchmarks):

    * *nearly-unique keys* — the distinct-key bound (product of run
      counts at the relation key parts' own levels, capped at the item
      count) is a large fraction of the grouped items. Carried key
      parts contribute nothing: entry fan-out multiplies items and
      distinct keys by the same factor, so it cancels out of the
      fraction — and saturating the bound instead would flip every
      carried emission to sort, which measures ~30% slower than hash
      on the carried benchmark batch;
    * *outside the dense regime* — the composite code space (product
      of the relation parts' integer value spans; unbounded for float
      or carried parts) exceeds :data:`DENSE_SPACE_FACTOR` × items.
      Inside it the hash grouper's O(n) presence scan is unbeatable;
      beyond it hash degrades to a full ``np.unique`` sort, and the
      sort path's packed value sort wins.

    Everything else — heavy key repetition, small inputs, dense code
    spaces — stays on hash.
    """
    # the *base* mode decides grouping: an ordered (topk) emission still
    # accumulates its full groups like its host mode, so it gets the same
    # hash-vs-sort grouping decision (the ranked cut is a separate,
    # finish-time decision — see topk_strategy)
    forced = forced_strategy()
    if forced is not None:
        return (
            forced if base_emission_mode(emission) == MODE_HASH
            else STRATEGY_HASH
        )
    if base_emission_mode(emission) != MODE_HASH:
        return STRATEGY_HASH
    host = max(slot.level for slot in emission.slots)
    items = stats.runs(host)
    if items < MIN_SORT_ITEMS:
        return STRATEGY_HASH
    distinct_bound = 1
    space: int | None = 1
    for part in emission.slots[0].key_parts:
        if part.kind != "rel":
            space = None  # carried columns: span unknown, assume wide
            continue
        part_span = stats.span(part.level)
        # distinct values at a level ≤ its run (prefix) count AND its
        # integer value span — the span is the tight bound for deep
        # levels, where every prefix is distinct but the attribute
        # itself has a small domain.
        part_card = stats.runs(part.level)
        if part_span is not None:
            part_card = min(part_card, part_span)
        distinct_bound = min(items, distinct_bound * part_card)
        if space is not None:
            space = None if part_span is None else space * part_span
    if distinct_bound < SORT_DISTINCT_FRACTION * items:
        return STRATEGY_HASH
    if space is not None and space <= DENSE_SPACE_FACTOR * items:
        return STRATEGY_HASH
    return STRATEGY_SORT


def emission_strategies(
    plan: MultiOutputPlan, trie: "TrieIndex"
) -> dict[str, str]:
    """Per-artifact grouping strategy for one (plan, trie) execution."""
    stats = TrieStats.from_trie(trie)
    return {
        emission.artifact: emission_strategy(emission, stats)
        for emission in plan.emissions
    }


def resolve_strategies(
    plan: MultiOutputPlan, trie: "TrieIndex", adaptive: bool = True
) -> dict[str, str] | None:
    """What one execution should use: the model's per-emission choices,
    or None (= static hash everywhere) when adaptivity is off and no
    :data:`FORCE_STRATEGY_ENV` override is in force. Deterministic per
    (plan, trie), so concurrent partition executions of one group always
    agree."""
    if not adaptive and forced_strategy() is None:
        return None
    return emission_strategies(plan, trie)


# ------------------------------------------------------------ backend choice


def choose_backend(rows: int, has_c: bool) -> str:
    """Per-group backend under ``backend="auto"``.

    Tiny tries stay on the interpreted Python loop (per-call staging of
    the array program or the ctypes marshalling dominates actual work);
    past that, compiled C when this group has a compiled implementation,
    else the NumPy array program.
    """
    if rows < SMALL_TRIE_ROWS:
        return "python"
    return "c" if has_c else "numpy"


# ----------------------------------------------------------- run reporting


def group_decision(
    plan: MultiOutputPlan,
    trie: "TrieIndex",
    *,
    backend: str,
    partitions: int,
    adaptive: bool = True,
) -> dict:
    """The record of what the model chose for one group's execution.

    ``strategies`` reports the grouping strategy per hash emission: what
    :func:`resolve_strategies` decides on the NumPy backend (the only one
    with both paths), and the structurally fixed ``'hash'`` elsewhere.
    Recorded on :class:`~repro.core.engine.RunResult` and surfaced as a
    column of BENCH_parallel.json — never part of compiled artefacts or
    fingerprints.
    """
    hash_emissions = [
        e.artifact
        for e in plan.emissions
        if base_emission_mode(e) == MODE_HASH
    ]
    if backend == "numpy":
        resolved = resolve_strategies(plan, trie, adaptive=adaptive) or {}
        strategies = {
            name: resolved.get(name, STRATEGY_HASH) for name in hash_emissions
        }
    else:
        strategies = {name: STRATEGY_HASH for name in hash_emissions}
    return {
        "backend": backend,
        "partitions": partitions,
        "rows": trie.num_rows,
        "strategies": strategies,
    }
