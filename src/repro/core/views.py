"""Directional views: the unit of LMFAO's shared query decomposition.

A view ``V_{n→p}`` sits on the join-tree edge from ``n`` (source) to ``p``
(target) and aggregates the join of the subtree rooted at ``n`` (away from
``p``), grouped by the edge separator plus any group-by attributes that must
be carried towards some query's root.

A view's aggregates are **compositional**: each is a product of factors
local to ``n`` and references to aggregates of the views incoming to ``n``
from its own children. Structural signatures over this representation are
what make view merging (same edge, same direction, same group-by) and
aggregate deduplication cheap and exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.query.aggregates import Factor
from repro.query.query import Query
from repro.util.errors import PlanError


@dataclass(frozen=True)
class AggRef:
    """Reference to aggregate ``index`` of the (merged) view named ``view``."""

    view: str
    index: int


def _referenced_views(aggregates) -> tuple[str, ...]:
    """Distinct child-view names any of the aggregates reference, in order."""
    seen: dict[str, None] = {}
    for aggregate in aggregates:
        for ref in aggregate.refs:
            seen.setdefault(ref.view, None)
    return tuple(seen)


@dataclass(frozen=True)
class ViewAggregate:
    """One aggregate of a view or output: ``SUM(∏ factors × ∏ child refs)``.

    ``factors`` are the query factors assigned to the home node;
    ``refs`` point into the incoming views of the home node (one per child
    subtree — every child contributes at least its join multiplicity).
    Both are kept in canonical order so equal products have equal
    signatures.
    """

    factors: tuple[Factor, ...] = ()
    refs: tuple[AggRef, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "factors", tuple(sorted(self.factors, key=lambda f: f.signature))
        )
        object.__setattr__(
            self, "refs", tuple(sorted(self.refs, key=lambda r: (r.view, r.index)))
        )

    @property
    def signature(self) -> tuple:
        """Structural identity used for aggregate deduplication."""
        return (
            tuple(f.signature for f in self.factors),
            tuple((r.view, r.index) for r in self.refs),
        )


@dataclass
class View:
    """A (possibly merged) directional view on a join-tree edge.

    Attributes
    ----------
    name:
        Unique name, e.g. ``V0_Sales_Items``.
    source, target:
        The edge and direction: computed at ``source``, consumed at
        ``target``.
    group_by:
        Canonical (name-sorted) group-by attributes. Contains the edge
        separator plus carried query group-by attributes.
    aggregates:
        Deduplicated aggregates; several queries may share one slot.
    """

    name: str
    source: str
    target: str
    group_by: tuple[str, ...]
    aggregates: list[ViewAggregate] = field(default_factory=list)
    _index: dict[tuple, int] = field(default_factory=dict, repr=False)

    def add_aggregate(self, aggregate: ViewAggregate) -> int:
        """Add (or find) an aggregate; returns its slot index."""
        sig = aggregate.signature
        found = self._index.get(sig)
        if found is not None:
            return found
        self.aggregates.append(aggregate)
        self._index[sig] = len(self.aggregates) - 1
        return len(self.aggregates) - 1

    @property
    def num_aggregates(self) -> int:
        return len(self.aggregates)

    def ref(self, index: int) -> AggRef:
        """An :class:`AggRef` to slot ``index`` of this view."""
        if not 0 <= index < len(self.aggregates):
            raise PlanError(f"view {self.name} has no aggregate {index}")
        return AggRef(self.name, index)

    @property
    def referenced_views(self) -> tuple[str, ...]:
        """Names of the child views any aggregate of this view consumes.

        These are the inbound edges of the view DAG that incremental
        maintenance walks: a change to a base relation dirties the views
        computed at its node, then every view reachable through this
        relation — the path from the node to each query root.
        """
        return _referenced_views(self.aggregates)

    def __repr__(self) -> str:
        gb = ",".join(self.group_by)
        return (
            f"View({self.name}: {self.source}->{self.target}, "
            f"gb=[{gb}], aggs={len(self.aggregates)})"
        )


@dataclass(frozen=True)
class ViewSignature:
    """Canonical structural identity of one (merged) view *subtree*.

    Independent of the batch the view was generated for: function names
    (which embed predicate constants for indicator factors) are abstracted
    to positional placeholders in first-occurrence order, and child views
    enter by their own signatures rather than their generated ``V{n}_…``
    names. Two views from different batches with equal ``structure``
    compute the same thing once the same concrete functions are bound to
    their ``slots`` — the property the cross-request view cache keys on
    (:func:`repro.serve.fingerprint.view_identities`).

    ``slots`` names the concrete functions filling the placeholders, own
    placeholders first then each child's slots in ``referenced_views``
    order — the whole subtree's constants, since the view's data depends
    on all of them. ``subtree`` is the set of join-tree relations the
    view aggregates over (its source node plus every child subtree),
    which is what delta routing intersects with changed relations.
    """

    structure: tuple
    slots: tuple[str, ...]
    subtree: frozenset[str]


def view_signature(
    view: "View", child_signatures: tuple[ViewSignature, ...]
) -> ViewSignature:
    """The canonical signature of ``view`` given its children's signatures.

    ``child_signatures`` must be ordered like ``view.referenced_views``
    (the order :meth:`repro.core.viewgen.ViewPlan.view_signatures`
    guarantees). Aggregate slot order is preserved — it is the value
    layout of the view's materialized ``ViewData``.
    """
    child_pos = {name: i for i, name in enumerate(view.referenced_views)}
    placeholder: dict[str, int] = {}
    aggs = []
    for aggregate in view.aggregates:
        factors = tuple(
            (f.attribute, placeholder.setdefault(f.function.name, len(placeholder)))
            for f in aggregate.factors
        )
        refs = tuple((child_pos[r.view], r.index) for r in aggregate.refs)
        aggs.append((factors, refs))
    structure = (
        "V",
        view.source,
        view.target,
        view.group_by,
        tuple(aggs),
        tuple(sig.structure for sig in child_signatures),
    )
    slots = tuple(placeholder) + tuple(
        name for sig in child_signatures for name in sig.slots
    )
    subtree = frozenset({view.source}).union(
        *(sig.subtree for sig in child_signatures)
    )
    return ViewSignature(structure=structure, slots=slots, subtree=subtree)


@dataclass
class Output:
    """A query's final computation at its root node.

    One :class:`ViewAggregate` per query aggregate, in query order; results
    are grouped by the query's declared ``group_by`` (order preserved).
    """

    query: Query
    node: str
    aggregates: list[ViewAggregate]

    @property
    def name(self) -> str:
        return self.query.name

    @property
    def group_by(self) -> tuple[str, ...]:
        return self.query.group_by

    @property
    def referenced_views(self) -> tuple[str, ...]:
        """Names of the views this output consumes (see :attr:`View.referenced_views`)."""
        return _referenced_views(self.aggregates)

    def __repr__(self) -> str:
        return f"Output({self.name}@{self.node}, aggs={len(self.aggregates)})"
