"""The code-generation layer (paper Figure 1, right box).

Each :class:`MultiOutputPlan` is compiled into one specialised Python
function. The generated code has exactly the shape of the paper's Figure 3:

* one ``for`` loop per trie level, iterating *runs* of the CSR trie index
  (never rows — row arithmetic is O(1) prefix-sum reads);
* incoming-view lookups hoisted to the level where their key completes,
  with semi-join ``continue`` on miss;
* ``g<i>`` locals for the γ prefix products (the paper's ``α``) and
  ``b<i>`` running sums for the β chains, initialised and accumulated at
  the levels the decomposition assigned;
* output writes that are plain assignments on the aligned fast path and
  probe-accumulate updates otherwise (the paper's
  ``if Q2(s) then Q2(s) += α6 else Q2(s) = α6``).

Substitution note (DESIGN.md): the paper generates C++; generating
specialised Python over the trie/prefix-sum runtime keeps the identical
plan structure while staying in-process. The generated source is kept on
the :class:`CompiledGroup` for inspection — the demo UI's "Code
Generation" tab.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from typing import Callable

from repro.core.lowering import lower_plan
from repro.core.plan import (
    CountTerm,
    Emission,
    EmissionSlot,
    FactorTerm,
    KeyPart,
    MultiOutputPlan,
    RowSumTerm,
    SubSumTerm,
    Term,
    ViewTerm,
)
from repro.core.runtime import GroupEnvironment
from repro.util.errors import PlanError


@dataclass
class CompiledGroup:
    """A compiled group: callable plus its generated source for inspection."""

    plan: MultiOutputPlan
    source: str
    fn: Callable[[GroupEnvironment], dict[str, dict]]

    def __call__(self, env: GroupEnvironment) -> dict[str, dict]:
        return self.fn(env)


class _Writer:
    def __init__(self) -> None:
        self._buf = io.StringIO()
        self._indent = 0

    def line(self, text: str = "") -> None:
        self._buf.write("    " * self._indent + text + "\n")

    def push(self) -> None:
        self._indent += 1

    def pop(self) -> None:
        self._indent -= 1

    def text(self) -> str:
        return self._buf.getvalue()


def generate_group(plan: MultiOutputPlan, share_terms: bool = True) -> CompiledGroup:
    """Generate, compile and return the executable for one group plan."""
    source = _generate_source(plan, share_terms)
    namespace: dict = {}
    code = compile(source, filename=f"<lmfao:{plan.group_name}>", mode="exec")
    exec(code, namespace)  # noqa: S102 - compiling our own generated plan code
    return CompiledGroup(plan=plan, source=source, fn=namespace["_run_group"])


# --------------------------------------------------------------------------
# source generation
# --------------------------------------------------------------------------


def _generate_source(plan: MultiOutputPlan, share_terms: bool) -> str:
    num_rel = len(plan.relation_levels)
    lowered = lower_plan(plan)
    w = _Writer()
    w.line(f"# generated multi-output plan for {plan.group_name} at node {plan.node}")
    w.line(f"# order: {plan.order}")
    w.line("def _run_group(env):")
    w.push()

    # ---------------- prologue: unpack the environment -----------------------
    w.line("NROWS = env.nrows")
    for k in range(num_rel):
        w.line(
            f"L{k}_vals, L{k}_rs, L{k}_re, L{k}_cs, L{k}_ce = env.levels[{k}]"
        )
    farr_var: dict[tuple[int, str, str], str] = {}
    for i, key in enumerate(plan.level_functions):
        farr_var[key] = f"F{i}"
        w.line(f"F{i} = env.farrs[{key!r}]")
    psum_var: dict[tuple, str] = {}
    for i, product in enumerate(plan.row_products):
        psum_var[product] = f"P{i}"
        w.line(f"P{i} = env.psums[{product!r}]")
    binding_var: dict[str, str] = {}
    for i, binding in enumerate(plan.bindings):
        binding_var[binding.view] = f"B{i}"
        w.line(f"B{i} = env.bindings[{binding.view!r}]")
    out_var: dict[str, str] = {}
    for i, emission in enumerate(plan.emissions):
        out_var[emission.artifact] = f"O{i}"
        w.line(f"O{i} = {{}}")

    # ------------- static schedule (the shared lowering) --------------------
    # All per-level bucketing — probes, γ/β placement, emission hosting —
    # comes from repro.core.lowering; only term hoisting (a generated-code
    # concern gated by share_terms) stays local to this backend.
    term_vars: dict[tuple, str] = {}
    term_var_count = 0

    def term_expr(term: Term) -> str:
        nonlocal term_var_count
        if isinstance(term, ViewTerm):
            return f"t_{binding_var[term.view]}[{term.agg_index}]"
        if isinstance(term, SubSumTerm):
            return f"ss_{term.block}_{term.agg_index}"
        if isinstance(term, FactorTerm):
            base = f"{farr_var[(term.level, term.attr, term.func_name)]}[r{term.level}]"
        elif isinstance(term, CountTerm):
            if term.level < 0:
                base = "NROWS"
            else:
                base = f"(L{term.level}_re[r{term.level}] - L{term.level}_rs[r{term.level}])"
        elif isinstance(term, RowSumTerm):
            pv = psum_var[term.product]
            if term.level < 0:
                base = f"{pv}[NROWS]"
            else:
                base = f"({pv}[L{term.level}_re[r{term.level}]] - {pv}[L{term.level}_rs[r{term.level}]])"
        else:  # pragma: no cover - exhaustive over Term union
            raise PlanError(f"unknown term {term!r}")
        if not share_terms:
            return base
        var = term_vars.get(term.sig)
        if var is None:
            var = f"t{term_var_count}"
            term_var_count += 1
            term_vars[term.sig] = var
            hoisted_terms_at.setdefault(term.level, []).append((var, base))
        return var

    hoisted_terms_at: dict[int, list[tuple[str, str]]] = {}

    # Pre-resolve every term expression so hoisted vars land on their levels.
    gamma_exprs: dict[int, list[str]] = {}
    for node in plan.gammas:
        gamma_exprs[node.id] = [term_expr(t) for t in node.terms]
    beta_exprs: dict[int, list[str]] = {}
    for node in plan.betas:
        beta_exprs[node.id] = [term_expr(t) for t in node.terms]

    def key_expr(parts: tuple[KeyPart, ...]) -> str:
        pieces = []
        for part in parts:
            if part.kind == "rel":
                pieces.append(f"v{part.level}")
            else:
                pieces.append(f"_cv{part.level}[{part.pos}]")
        if len(pieces) == 1:
            return pieces[0]
        return "(" + ", ".join(pieces) + ")"

    def slot_value_expr(slot: EmissionSlot) -> str:
        pieces = []
        if slot.gamma is not None:
            pieces.append(f"g{slot.gamma}")
        if slot.beta is not None:
            pieces.append(f"b{slot.beta}")
        for cf in slot.carried_factors:
            pieces.append(f"_ca{cf.block}[{cf.agg_index}]")
        return " * ".join(pieces) if pieces else "1.0"

    def emit_term_vars(level: int) -> None:
        for var, expr in hoisted_terms_at.get(level, ()):  # stable order
            w.line(f"{var} = {expr}")

    def emit_gammas(level: int) -> None:
        for node in lowered.level(level).gammas:
            exprs = list(gamma_exprs[node.id])
            if node.parent is not None:
                exprs = [f"g{node.parent}"] + exprs
            w.line(f"g{node.id} = {' * '.join(exprs)}")

    def emit_beta_inits(level: int) -> None:
        for node in lowered.level(level).beta_inits:
            w.line(f"b{node.id} = 0.0")

    def emit_beta_accums(level: int) -> None:
        for node in lowered.level(level).beta_accums:
            exprs = list(beta_exprs[node.id])
            if node.child is not None:
                exprs.append(f"b{node.child}")
            w.line(f"b{node.id} += {' * '.join(exprs)}")

    def emit_probes(level: int) -> None:
        schedule = lowered.level(level)
        for binding in schedule.scalar_probes:
            bv = binding_var[binding.view]
            key = _binding_key_expr(binding)
            w.line(f"t_{bv} = {bv}.get({key})")
            w.line(f"if t_{bv} is None: continue")
        for binding in schedule.carried_probes:
            bv = binding_var[binding.view]
            block = binding.block
            key = _binding_key_expr(binding)
            w.line(f"E{block} = {bv}.get({key})")
            w.line(f"if E{block} is None: continue")
            subs = lowered.block_subsums(block)
            if subs:
                for term in subs:
                    w.line(f"ss_{term.block}_{term.agg_index} = 0.0")
                w.line(f"for _ent in E{block}:")
                w.push()
                w.line("_a = _ent[1]")
                for term in subs:
                    w.line(
                        f"ss_{term.block}_{term.agg_index} += _a[{term.agg_index}]"
                    )
                w.pop()

    def emit_aligned(emission: Emission) -> None:
        ov = out_var[emission.artifact]
        first = emission.slots[0]
        key = key_expr(first.key_parts)
        values = ", ".join(slot_value_expr(s) for s in emission.slots)
        if first.support is not None:
            w.line(f"if b{first.support} > 0:")
            w.push()
            w.line(f"{ov}[{key}] = [{values}]")
            w.pop()
        else:
            w.line(f"{ov}[{key}] = [{values}]")

    def emit_slot_group(emission: Emission, slots: tuple[EmissionSlot, ...]) -> None:
        ov = out_var[emission.artifact]
        first = slots[0]
        guarded = first.support is not None
        if guarded:
            w.line(f"if b{first.support} > 0:")
            w.push()
        if first.key_blocks:
            # nested loops over the keyed carried blocks' entries
            for block in first.key_blocks:
                w.line(f"for _ent{block} in E{block}:")
                w.push()
                w.line(f"_cv{block} = _ent{block}[0]")
                w.line(f"_ca{block} = _ent{block}[1]")
        w.line(f"_k = {key_expr(first.key_parts)}")
        w.line(f"_o = {ov}.get(_k)")
        if len(slots) == emission.width and not first.key_blocks:
            values = ", ".join(slot_value_expr(s) for s in slots)
            w.line("if _o is None:")
            w.push()
            w.line(f"{ov}[_k] = [{values}]")
            w.pop()
            w.line("else:")
            w.push()
            for i, slot in enumerate(slots):
                w.line(f"_o[{slot.slot}] += {slot_value_expr(slot)}")
            w.pop()
        else:
            w.line("if _o is None:")
            w.push()
            w.line(f"_o = {ov}[_k] = [0.0] * {emission.width}")
            w.pop()
            for slot in slots:
                w.line(f"_o[{slot.slot}] += {slot_value_expr(slot)}")
        if first.key_blocks:
            for _block in first.key_blocks:
                w.pop()
        if guarded:
            w.pop()

    def emit_level_tail(level: int) -> None:
        emit_beta_accums(level)
        schedule = lowered.level(level)
        for lowered_emission in schedule.aligned_emissions:
            emit_aligned(lowered_emission.emission)
        for group in schedule.slot_groups:
            emit_slot_group(group.emission, group.slots)

    # ------------------------- emit the loop nest -----------------------------
    emit_term_vars(-1)
    emit_gammas(-1)
    emit_beta_inits(-1)

    def emit_loops(level: int) -> None:
        if level >= num_rel:
            return
        if level == 0:
            w.line("for r0 in range(len(L0_vals)):")
        else:
            w.line(
                f"for r{level} in range(L{level-1}_cs[r{level-1}], "
                f"L{level-1}_ce[r{level-1}]):"
            )
        w.push()
        w.line(f"v{level} = L{level}_vals[r{level}]")
        emit_probes(level)
        emit_term_vars(level)
        emit_gammas(level)
        emit_beta_inits(level)
        emit_loops(level + 1)
        emit_level_tail(level)
        w.pop()

    emit_loops(0)
    emit_level_tail(-1)

    # scalar emissions after all loops
    for lowered_emission in lowered.scalar_emissions:
        emission = lowered_emission.emission
        ov = out_var[emission.artifact]
        values = ", ".join(slot_value_expr(s) for s in emission.slots)
        w.line(f"{ov}[()] = [{values}]")

    results = ", ".join(
        f"{emission.artifact!r}: {out_var[emission.artifact]}"
        for emission in plan.emissions
    )
    w.line(f"return {{{results}}}")
    w.pop()
    return w.text()


def _binding_key_expr(binding) -> str:
    pieces = [f"v{level}" for level in binding.key_levels]
    if len(pieces) == 1:
        return pieces[0]
    return "(" + ", ".join(pieces) + ")"
