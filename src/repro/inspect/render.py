"""Render engine internals as text (the demonstration's Figure 4 tabs).

The interactive demo lets users inspect (a) the join tree annotated with
view counts per direction, (b) the view groups and their dependency graph,
(c) the generated code per group, and (d) application timings. All of those
artefacts exist on :class:`repro.core.engine.CompiledBatch`; this module
renders them for terminals, plus Graphviz DOT output for the dependency
graph.
"""

from __future__ import annotations

from repro.core.engine import CompiledBatch
from repro.core.groups import GroupPlan
from repro.core.viewgen import ViewPlan
from repro.jointree.jointree import JoinTree


def render_join_tree(
    tree: JoinTree, view_plan: ViewPlan | None = None, root: str | None = None
) -> str:
    """ASCII join tree; with a view plan, edges show per-direction view counts."""
    root = root or tree.nodes[0]
    counts = view_plan.edge_view_counts() if view_plan is not None else {}
    lines: list[str] = []

    def label(child: str, parent: str) -> str:
        up = counts.get((child, parent), 0)
        down = counts.get((parent, child), 0)
        decorations = []
        if up:
            decorations.append(f"{up}↑")
        if down:
            decorations.append(f"{down}↓")
        return f" [{' '.join(decorations)}]" if decorations else ""

    def visit(node: str, parent: str | None, prefix: str, last: bool) -> None:
        if parent is None:
            lines.append(node)
        else:
            connector = "`-- " if last else "|-- "
            lines.append(f"{prefix}{connector}{node}{label(node, parent)}")
        children = [n for n in tree.neighbors(node) if n != parent]
        for i, child in enumerate(children):
            extension = "    " if (last or parent is None) else "|   "
            child_prefix = prefix + ("" if parent is None else extension)
            visit(child, node, child_prefix, i == len(children) - 1)

    visit(root, None, "", True)
    return "\n".join(lines)


def render_view_list(view_plan: ViewPlan, node: str | None = None) -> str:
    """The views (optionally only those computed at ``node``) with users."""
    lines = []
    for view in view_plan.views.values():
        if node is not None and view.source != node:
            continue
        users = ", ".join(view_plan.queries_using.get(view.name, ()))
        gb = ", ".join(view.group_by)
        lines.append(
            f"{view.name}: {view.source} -> {view.target}  "
            f"group by [{gb}]  aggregates={view.num_aggregates}  used by {users}"
        )
    for output in view_plan.outputs:
        if node is not None and output.node != node:
            continue
        gb = ", ".join(output.group_by)
        lines.append(
            f"{output.name}: output at {output.node}  group by [{gb}]  "
            f"aggregates={len(output.aggregates)}"
        )
    return "\n".join(lines)


def render_group_graph(group_plan: GroupPlan) -> str:
    """The group dependency DAG as indented text."""
    lines = []
    for group in group_plan.groups:
        deps = group_plan.dependencies.get(group.index, ())
        dep_names = ", ".join(group_plan.groups[d].name for d in deps) or "-"
        artifacts = ", ".join(group.artifact_names)
        lines.append(f"{group.name}: [{artifacts}]  depends on: {dep_names}")
    return "\n".join(lines)


def render_dependency_dot(group_plan: GroupPlan) -> str:
    """Graphviz DOT source for the group dependency graph (Figure 2, right)."""
    lines = ["digraph lmfao_groups {", "  rankdir=BT;"]
    for group in group_plan.groups:
        artifacts = "\\n".join(group.artifact_names)
        lines.append(f'  {group.name} [shape=box, label="{group.name}\\n{artifacts}"];')
    for producer, consumer in group_plan.dependency_edges():
        lines.append(f"  {producer} -> {consumer};")
    lines.append("}")
    return "\n".join(lines)


def describe_compiled_batch(compiled: CompiledBatch) -> str:
    """A full multi-section report over one compiled batch."""
    sections = []
    sections.append("== Join tree (views per direction) ==")
    sections.append(render_join_tree(compiled.tree, compiled.view_plan))
    sections.append("")
    sections.append("== Root assignment ==")
    for name, root in compiled.roots.items():
        sections.append(f"  {name} -> {root}")
    sections.append("")
    sections.append(
        f"== Views ({compiled.num_views}) and outputs ({len(compiled.view_plan.outputs)}) =="
    )
    sections.append(render_view_list(compiled.view_plan))
    sections.append("")
    sections.append(f"== Groups ({compiled.num_groups}) ==")
    sections.append(render_group_graph(compiled.group_plan))
    sections.append("")
    sections.append("== Generated code sizes ==")
    for index, code in enumerate(compiled.code):
        loc = code.source.count("\n")
        sections.append(
            f"  {compiled.group_plan.groups[index].name}: {loc} generated lines"
        )
    return "\n".join(sections)
