"""Textual views of engine internals — the demo UI's four tabs as text."""

from repro.inspect.render import (
    describe_compiled_batch,
    render_dependency_dot,
    render_group_graph,
    render_join_tree,
    render_view_list,
)

__all__ = [
    "describe_compiled_batch",
    "render_dependency_dot",
    "render_group_graph",
    "render_join_tree",
    "render_view_list",
]
