"""Shared aggregation kernels for the baseline engines."""

from __future__ import annotations

import numpy as np

from repro.data.relation import Relation
from repro.query.query import Query, QueryResult


def evaluate_on_join(
    query: Query, join: Relation, where_mode: str = "indicator"
) -> QueryResult:
    """Evaluate one query over a materialised join with numpy group-bys.

    ``where_mode``:

    * ``"indicator"`` — WHERE predicates multiply as 0/1 indicators, so
      every join group appears in the output (LMFAO's folded semantics;
      used by the oracle in differential tests);
    * ``"filter"`` — predicates filter rows first (SQL semantics; groups
      with no qualifying rows are absent).
    """
    num_rows = join.num_rows
    mask: np.ndarray | None = None
    indicator: np.ndarray | None = None
    if query.where:
        selected = np.ones(num_rows, dtype=bool)
        for predicate in query.where:
            selected &= predicate.evaluate(join.column(predicate.attribute))
        if where_mode == "filter":
            mask = selected
        else:
            indicator = selected.astype(np.float64)

    def column(name: str) -> np.ndarray:
        col = join.column(name)
        return col[mask] if mask is not None else col

    effective_rows = int(mask.sum()) if mask is not None else num_rows
    values: list[np.ndarray] = []
    for aggregate in query.aggregates:
        prod = np.ones(effective_rows, dtype=np.float64)
        for factor in aggregate.factors:
            prod = prod * factor.function(column(factor.attribute))
        if indicator is not None:
            prod = prod * indicator
        values.append(prod)

    groups: dict[tuple, tuple[float, ...]] = {}
    if not query.group_by:
        if effective_rows:
            groups[()] = tuple(float(v.sum()) for v in values)
        else:
            groups[()] = tuple(0.0 for _ in values)
        return QueryResult(query=query, groups=groups)

    key_cols = [column(name) for name in query.group_by]
    stacked = np.stack(key_cols, axis=1) if key_cols else None
    if effective_rows == 0:
        return QueryResult(query=query, groups={})
    uniques, inverse = np.unique(stacked, axis=0, return_inverse=True)
    sums = [
        np.bincount(inverse, weights=v, minlength=len(uniques)) for v in values
    ]
    for i, key_row in enumerate(uniques):
        key = tuple(k.item() for k in key_row)
        groups[key] = tuple(float(s[i]) for s in sums)
    return QueryResult(query=query, groups=groups)
