"""RDBMS-style baseline: each aggregate query runs independently.

This models how the paper's PostgreSQL/MonetDB baselines process an
aggregate batch: every query gets its own plan — join the relations (with
projection pushdown, as a competent optimiser would), then one group-by
aggregation — with **no sharing of joins, scans or partial aggregates
across queries**. The per-query join is the dominant cost, which is
exactly the behaviour the paper attributes to mainstream engines.
"""

from __future__ import annotations

from repro.baselines.common import evaluate_on_join
from repro.data.catalog import Database
from repro.data.join import natural_join
from repro.query.batch import QueryBatch
from repro.query.query import Query, QueryResult
from repro.util import stable_unique


class SqlEngineBaseline:
    """Evaluate a batch one query at a time over recomputed joins."""

    def __init__(self, db: Database, where_mode: str = "indicator") -> None:
        self.db = db
        self.where_mode = where_mode
        # attributes shared between relations must survive projection,
        # otherwise join multiplicities change
        counts: dict[str, int] = {}
        for rel in db.relations:
            for name in rel.attribute_names:
                counts[name] = counts.get(name, 0) + 1
        self._join_attrs = {name for name, c in counts.items() if c > 1}

    def run_query(self, query: Query) -> QueryResult:
        """Plan and execute one query in isolation."""
        needed = set(query.attributes) | self._join_attrs
        projected = []
        for rel in self.db.relations:
            keep = [a for a in rel.attribute_names if a in needed]
            projected.append(rel.project(keep) if keep else rel)
        join = natural_join(projected, output_name="Q")
        return evaluate_on_join(query, join, where_mode=self.where_mode)

    def run(self, batch: QueryBatch) -> dict[str, QueryResult]:
        """Execute every query of the batch independently."""
        return {query.name: self.run_query(query) for query in batch}
