"""Materialise-then-compute baseline (the ML-tools pipeline).

The paper's TensorFlow and scikit-learn-over-Pandas baselines export the
feature-extraction join once and then run dense linear algebra per task.
:class:`MaterializedPipeline` reproduces that shape: one (cached) join
materialisation, then numpy aggregation per query. Its per-query results
are exact, which doubles it as the brute-force oracle in the tests.
"""

from __future__ import annotations

import time

import numpy as np

from repro.baselines.common import evaluate_on_join
from repro.data.catalog import Database
from repro.data.relation import Relation
from repro.query.batch import QueryBatch
from repro.query.query import Query, QueryResult


class MaterializedPipeline:
    """Materialise ``D`` once; evaluate each query over the flat table."""

    def __init__(self, db: Database, where_mode: str = "indicator") -> None:
        self.db = db
        self.where_mode = where_mode
        self._join: Relation | None = None
        self.materialize_seconds: float = 0.0

    @property
    def join(self) -> Relation:
        """The materialised feature-extraction join (computed on first use)."""
        if self._join is None:
            start = time.perf_counter()
            self._join = self.db.materialize_join()
            self.materialize_seconds = time.perf_counter() - start
        return self._join

    def design_matrix(self, attributes: tuple[str, ...]) -> np.ndarray:
        """A dense float64 matrix of the requested join columns.

        This is the "export to the ML tool" step of the pipeline baselines.
        """
        join = self.join
        return np.stack(
            [join.column(a).astype(np.float64) for a in attributes], axis=1
        )

    def run_query(self, query: Query) -> QueryResult:
        """Evaluate one query over the materialised join."""
        return evaluate_on_join(query, self.join, where_mode=self.where_mode)

    def run(self, batch: QueryBatch) -> dict[str, QueryResult]:
        """Evaluate every query of the batch over the single join."""
        return {query.name: self.run_query(query) for query in batch}
