"""Comparison systems from the paper's evaluation narrative.

* :class:`SqlEngineBaseline` — the PostgreSQL/MonetDB stand-in: each query
  is planned and executed independently (join, then group-by aggregate),
  with no sharing across the batch;
* :class:`MaterializedPipeline` — the TensorFlow / scikit-learn-over-Pandas
  stand-in: materialise the feature-extraction join once, then run dense
  numpy aggregation per query. Also serves as the brute-force oracle for
  the differential tests.
"""

from repro.baselines.materialized import MaterializedPipeline
from repro.baselines.sqlengine import SqlEngineBaseline

__all__ = ["MaterializedPipeline", "SqlEngineBaseline"]
