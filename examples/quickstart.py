"""Quickstart: the paper's Section 2 example, end to end.

Builds a synthetic Favorita database, runs the three queries Q1-Q3 from the
paper over the Figure 2 join tree, prints the results, and shows the
inspection views of the demonstration (join tree with view counts, group
dependency graph, generated code for the Figure 3 group).

Run:  python examples/quickstart.py [scale]
"""

from __future__ import annotations

import sys

from repro import EngineConfig, LMFAO, favorita
from repro.inspect import render_group_graph, render_join_tree
from repro.paper import EXAMPLE_ROOTS, FAVORITA_TREE, example_queries


def main(scale: float = 0.2) -> None:
    print(f"-- generating synthetic Favorita (scale={scale}) --")
    db = favorita(scale=scale, seed=42)
    for name, rows in db.summary().items():
        print(f"  {name:<14} {rows:>8} tuples")

    engine = LMFAO(
        db,
        EngineConfig(join_tree_edges=FAVORITA_TREE, root_override=EXAMPLE_ROOTS),
    )
    batch = example_queries()
    result = engine.run(batch)

    print("\n-- join tree (arrows: views per direction) --")
    print(render_join_tree(engine.tree, result.compiled.view_plan))

    print("\n-- view groups (Figure 2, right) --")
    print(render_group_graph(result.compiled.group_plan))

    print("\n-- results --")
    print(f"  Q1 (total units)        = {result['Q1'].scalar():.1f}")
    q2 = result["Q2"].groups
    print(f"  Q2 (per store, {len(q2)} groups) e.g. "
          + ", ".join(f"store {k[0]}: {v[0]:.1f}" for k, v in list(sorted(q2.items()))[:3]))
    q3 = result["Q3"].groups
    print(f"  Q3 (per class, {len(q3)} groups) e.g. "
          + ", ".join(f"class {k[0]}: {v[0]:.1f}" for k, v in list(sorted(q3.items()))[:3]))

    print("\n-- timings --")
    for phase, seconds in result.timings.items():
        print(f"  {phase:<10} {seconds * 1e3:8.2f} ms")

    print("\n-- generated code for the Figure 3 group --")
    for index, group in enumerate(result.compiled.group_plan.groups):
        if "Q1" in group.artifact_names:
            print(result.compiled.generated_source(index))
            break


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.2)
