"""One process serving interleaved query + maintain traffic from threads.

Spins up an :class:`~repro.serve.AggregateServer` over a synthetic
Favorita instance, then runs two kinds of traffic concurrently:

* **readers** — threads hammering ``server.run`` / ``server.submit`` with
  decision-tree-style batches (same structure, moving thresholds — the
  structural plan cache compiles each shape once and re-binds constants
  on every later request);
* **one writer** — a maintained handle streaming insert/delete rounds
  through ``handle.apply``, each round installing a new snapshot version.

Every observed result is checked **bit-exact** against a sequential
oracle computed per snapshot version: a reader pinned to version ``v``
must see exactly the version-``v`` answer, no matter how the threads
interleave — the snapshot-isolation contract of ``docs/serving.md``.

Run:  python examples/serving_concurrent.py [scale] [rounds] [readers]
"""

from __future__ import annotations

import sys
import threading
import time

from repro import AggregateServer, LMFAO
from repro.data import favorita
from repro.incremental.delta import normalize_deltas
from repro.query import QueryBatch, parse_query


def node_batch(threshold: float) -> QueryBatch:
    """One CART-node-style batch; same shape for every threshold."""
    return QueryBatch(
        [
            parse_query(
                f"SELECT SUM(1), SUM(units) FROM D WHERE units <= {threshold}",
                "lo",
            ),
            parse_query(
                f"SELECT store, SUM(units) FROM D WHERE units > {threshold} "
                f"GROUP BY store",
                "hi",
            ),
        ]
    )


def groups_of(run) -> dict:
    return {name: result.groups for name, result in run.results.items()}


def main(scale: float = 0.1, rounds: int = 8, readers: int = 3) -> None:
    thresholds = [2.0, 3.0, 5.0, 8.0]
    print(f"-- generating synthetic Favorita (scale={scale}) --")
    db = favorita(scale=scale, seed=7)
    sales = db.relation("Sales")
    update_rounds = [
        {"inserts": {"Sales": [sales.row(i), sales.row(i + 1)]}}
        if i % 3 else {"deletes": {"Sales": [sales.row(i)]}}
        for i in range(rounds)
    ]

    # ---- sequential oracle: replay the same deltas, version by version
    print(f"-- computing sequential oracles for {rounds + 1} versions --")
    oracles: dict[int, dict[float, dict]] = {}
    current = db
    for version in range(rounds + 1):
        if version:
            deltas = normalize_deltas(
                current,
                update_rounds[version - 1].get("inserts"),
                update_rounds[version - 1].get("deletes"),
            )
            for name, delta in deltas.items():
                current = current.with_relation(
                    delta.apply_to(current.relation(name))
                )
        engine = LMFAO(current)
        oracles[version] = {
            t: groups_of(engine.run(node_batch(t)))
            for t in [*thresholds, 4.0]  # 4.0 is the writer's own batch
        }

    # ---- the server under concurrent traffic
    server = AggregateServer(db, plan_cache_capacity=8)
    writer_handle = server.maintain(node_batch(4.0))
    writer_done = threading.Event()
    observations: list[tuple[int, float, dict]] = []
    errors: list[BaseException] = []
    lock = threading.Lock()

    def reader(seed: int) -> None:
        i = seed
        try:
            while not writer_done.is_set():
                threshold = thresholds[i % len(thresholds)]
                if i % 2:
                    run = server.run(node_batch(threshold))
                else:
                    run = server.submit(node_batch(threshold)).result(timeout=120)
                with lock:
                    observations.append(
                        (run.snapshot_version, threshold, groups_of(run))
                    )
                i += 1
        except BaseException as exc:
            errors.append(exc)

    print(f"-- serving: {readers} reader thread(s) vs 1 maintain writer --")
    start = time.perf_counter()
    threads = [threading.Thread(target=reader, args=(i,)) for i in range(readers)]
    for t in threads:
        t.start()
    for update in update_rounds:
        outcome = writer_handle.apply(**update)
        # the writer's own maintained results match the oracle of the
        # version it just installed
        handle_groups = {
            name: result.groups for name, result in outcome.results.items()
        }
        assert handle_groups == oracles[outcome.version][4.0], (
            f"maintained state diverged at version {outcome.version}"
        )
    writer_done.set()
    for t in threads:
        t.join(timeout=120)
    elapsed = time.perf_counter() - start
    if errors:
        raise errors[0]

    # ---- the assertion this example exists for: zero torn reads
    for version, threshold, groups in observations:
        assert groups == oracles[version][threshold], (
            f"torn read: version {version}, threshold {threshold}"
        )
    final = server.run(node_batch(4.0))
    assert final.snapshot_version == rounds
    assert groups_of(final) == oracles[rounds][4.0]

    stats = server.stats()
    versions_seen = sorted({v for v, _, _ in observations})
    print(f"  {len(observations)} concurrent reads in {elapsed:.2f}s, "
          f"every one bit-exact for its pinned version")
    print(f"  versions observed by readers: {versions_seen}")
    print(f"  final version served: {final.snapshot_version} "
          f"({rounds} applies)")
    print(f"  plan cache: {stats.plan_cache.entries} structure(s) compiled, "
          f"{stats.plan_cache.hits} hits, {stats.plan_cache.misses} misses "
          f"(hit rate {stats.plan_cache.hit_rate:.0%})")
    print(f"  async front: {stats.submitted} executed, "
          f"{stats.coalesced} coalesced onto in-flight futures")
    server.close()
    print("OK: interleaved run/maintain traffic, bit-exact vs the "
          "sequential oracle, zero reads of partially-applied deltas")


if __name__ == "__main__":
    main(
        scale=float(sys.argv[1]) if len(sys.argv) > 1 else 0.1,
        rounds=int(sys.argv[2]) if len(sys.argv) > 2 else 8,
        readers=int(sys.argv[3]) if len(sys.argv) > 3 else 3,
    )
