"""Incremental maintenance: compile once, apply deltas many times.

Builds a synthetic Retailer database, compiles a small aggregate batch into
a maintained handle, then streams update rounds through it — inserts and
deletes on the Inventory fact table and the Item dimension — refreshing the
results at delta cost instead of recomputing the batch. Ends with a linear
regression model kept trained from the maintained covariance aggregates.

Run:  python examples/incremental_updates.py [scale]
"""

from __future__ import annotations

import sys
import time

import numpy as np

from repro import LMFAO, retailer
from repro.ml import FeatureSpec, IncrementalLinearRegression
from repro.query import Aggregate, Factor, Query, QueryBatch


def inventory_batch() -> QueryBatch:
    return QueryBatch(
        [
            Query("total_units", aggregates=(Aggregate.sum("inventoryunits"),)),
            Query(
                "units_by_location",
                group_by=("locn",),
                aggregates=(Aggregate.sum("inventoryunits"), Aggregate.count()),
            ),
            Query(
                "value_by_category",
                group_by=("category",),
                aggregates=(
                    Aggregate.product((Factor("prize"), Factor("inventoryunits"))),
                ),
            ),
        ]
    )


def main(scale: float = 0.2) -> None:
    print(f"-- generating synthetic Retailer (scale={scale}) --")
    db = retailer(scale=scale, seed=42)
    for name, rows in db.summary().items():
        print(f"  {name:<10} {rows:>8} tuples")

    engine = LMFAO(db)
    print("\n-- compile once --")
    start = time.perf_counter()
    handle = engine.maintain(inventory_batch())
    print(
        f"  compiled {handle.compiled.num_views} views / "
        f"{handle.compiled.num_groups} groups and ran the initial batch "
        f"in {(time.perf_counter() - start) * 1e3:.1f} ms"
    )
    print(f"  total units = {handle['total_units'].scalar():.0f}")

    print("\n-- apply many --")
    rng = np.random.default_rng(7)
    inventory = handle.database.relation("Inventory")
    for round_index in range(5):
        if round_index == 3:  # one delete round: retire random stock lines
            source = handle.database.relation("Inventory")
            picks = rng.choice(source.num_rows, size=200, replace=False)
            delta = {"deletes": {"Inventory": [source.row(int(i)) for i in picks]}}
            label = "delete 200"
        else:
            picks = rng.choice(inventory.num_rows, size=50, replace=False)
            delta = {"inserts": {"Inventory": [inventory.row(int(i)) for i in picks]}}
            label = "insert  50"
        outcome = handle.apply(**delta)
        print(
            f"  round {round_index}: {label} Inventory rows -> "
            f"{outcome.seconds * 1e3:6.1f} ms  "
            f"(numeric {outcome.groups_numeric}, rescan {outcome.groups_rescanned}, "
            f"skipped {outcome.groups_skipped}; "
            f"refreshed {', '.join(outcome.refreshed_queries) or 'nothing'})"
        )
        print(f"           total units = {handle['total_units'].scalar():.0f}")

    print("\n-- apply vs recompute --")
    rows = [inventory.row(int(i)) for i in rng.choice(inventory.num_rows, size=10)]
    start = time.perf_counter()
    handle.apply(inserts={"Inventory": rows})
    apply_ms = (time.perf_counter() - start) * 1e3
    start = time.perf_counter()
    handle.recompute()
    recompute_ms = (time.perf_counter() - start) * 1e3
    print(
        f"  10-row delta: apply {apply_ms:.1f} ms vs from-scratch run "
        f"{recompute_ms:.1f} ms ({recompute_ms / apply_ms:.0f}x)"
    )

    print("\n-- a model kept trained from maintained Σ aggregates --")
    spec = FeatureSpec(
        label="inventoryunits", continuous=("prize",), categorical=("category",)
    )
    ilr = IncrementalLinearRegression(LMFAO(handle.database), spec, max_iterations=500)
    print(f"  initial objective = {ilr.model.objective:.4f}")
    picks = rng.choice(inventory.num_rows, size=100, replace=False)
    start = time.perf_counter()
    model = ilr.apply(inserts={"Inventory": [inventory.row(int(i)) for i in picks]})
    print(
        f"  after 100 inserts: objective = {model.objective:.4f} "
        f"(refresh took {(time.perf_counter() - start) * 1e3:.1f} ms, "
        f"aggregates maintained in {model.aggregate_seconds * 1e3:.1f} ms)"
    )


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.2)
