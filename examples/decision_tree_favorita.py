"""CART regression tree over Favorita (paper Section 3).

Grows a regression tree predicting ``units``; every tree node is one LMFAO
batch (the variance triples for all candidate splits), and the engine's
trie cache is shared across all nodes. Compares the per-node batch sizes
of the two formulations (group-by vs. per-threshold indicators — the
latter is the formulation whose size the paper reports: thousands of
aggregates per node).

Run:  python examples/decision_tree_favorita.py [scale]
"""

from __future__ import annotations

import sys
import time

import numpy as np

from repro import CartConfig, EngineConfig, LMFAO, MaterializedPipeline, favorita
from repro.ml import FeatureSpec, RegressionTree, cart_node_batch
from repro.paper import FAVORITA_TREE


def main(scale: float = 0.15) -> None:
    db = favorita(scale=scale, seed=21)
    spec = FeatureSpec(
        label="units",
        continuous=("txns", "price"),
        categorical=("promo", "stype", "cluster", "family", "perishable", "htype"),
    )
    print(f"Favorita scale={scale}: {db.total_tuples()} tuples")

    groupby_batch = cart_node_batch(spec, path=())
    print(
        f"group-by formulation: {groupby_batch.num_aggregates} aggregates/node "
        f"({len(groupby_batch)} queries)"
    )
    thresholds = {f: [float(t) for t in range(10, 200, 12)] for f in spec.continuous}
    indicator_batch = cart_node_batch(
        spec, path=(), mode="indicator", thresholds=thresholds
    )
    print(
        f"indicator formulation: {indicator_batch.num_aggregates} aggregates/node "
        f"(the paper counts this formulation: thousands per node)"
    )

    engine = LMFAO(db, EngineConfig(join_tree_edges=FAVORITA_TREE))
    start = time.perf_counter()
    tree = RegressionTree(spec, CartConfig(max_depth=4, min_samples=30)).fit(engine)
    seconds = time.perf_counter() - start
    print(
        f"\ngrew {tree.num_nodes} nodes in {seconds:.2f}s "
        f"({tree.total_aggregates} aggregates total, "
        f"engine time {tree.aggregate_seconds:.2f}s)"
    )
    print("\n-- tree --")
    print(tree.describe())

    join = MaterializedPipeline(db).join
    rows = {a: join.column(a) for a in spec.all_attributes}
    predictions = tree.predict_rows(rows)
    y = join.column("units").astype(np.float64)
    baseline_sse = ((y - y.mean()) ** 2).sum()
    tree_sse = ((y - predictions) ** 2).sum()
    print(
        f"\nvariance explained: {1 - tree_sse / baseline_sse:.1%} "
        f"(training, {join.num_rows} rows)"
    )


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.15)
