"""The demonstration scenario of Section 4, as a terminal walkthrough.

Mirrors the four tabs of the LMFAO demo UI (Figure 4):

  (a) View Generation — join tree annotated with per-direction view
      counts; view/output listing; root re-assignment;
  (b) View Groups — the group dependency graph (also exported as DOT);
  (c) Code Generation — the specialised code of a chosen group;
  (d) Application — runs the aggregate batch and reports timings.

Run:  python examples/demo_walkthrough.py [scale]
"""

from __future__ import annotations

import sys

from repro import EngineConfig, LMFAO, favorita
from repro.inspect import (
    render_dependency_dot,
    render_group_graph,
    render_join_tree,
    render_view_list,
)
from repro.ml import covariance_batch, favorita_features
from repro.paper import FAVORITA_TREE


def main(scale: float = 0.1) -> None:
    db = favorita(scale=scale, seed=17)
    spec = favorita_features(db)
    batch = covariance_batch(spec)
    print(
        f"== Input tab ==\ndatabase: favorita (scale={scale}), application: "
        f"linear regression\nbatch: {batch.num_aggregates} aggregates in "
        f"{len(batch)} queries\n"
    )

    engine = LMFAO(db, EngineConfig(join_tree_edges=FAVORITA_TREE))
    compiled = engine.compile(batch)

    print("== (a) View Generation tab ==")
    print(render_join_tree(engine.tree, compiled.view_plan))
    print(f"\n{compiled.num_views} merged views; outputs per root:")
    roots: dict[str, int] = {}
    for root in compiled.roots.values():
        roots[root] = roots.get(root, 0) + 1
    for root, count in sorted(roots.items()):
        print(f"  {root:<14} {count:>5} queries")
    print("\nviews computed at Sales:")
    print(render_view_list(compiled.view_plan, node="Sales") or "  (none)")

    print("\n== re-assigning a root (the drop-down interaction) ==")
    one_query = batch.queries[1].name
    pinned = LMFAO(
        db,
        EngineConfig(
            join_tree_edges=FAVORITA_TREE, root_override={one_query: "Items"}
        ),
    ).compile(batch)
    print(
        f"pinning {one_query} to Items: {compiled.num_views} -> "
        f"{pinned.num_views} views, {compiled.num_groups} -> "
        f"{pinned.num_groups} groups"
    )

    print("\n== (b) View Groups tab ==")
    print(render_group_graph(compiled.group_plan))
    dot = render_dependency_dot(compiled.group_plan)
    print(f"\n(DOT export: {len(dot.splitlines())} lines, render with graphviz)")

    print("\n== (c) Code Generation tab ==")
    largest = max(
        range(compiled.num_groups),
        key=lambda i: compiled.code[i].source.count("\n"),
    )
    source = compiled.generated_source(largest)
    name = compiled.group_plan.groups[largest].name
    lines = source.splitlines()
    print(f"group {name}: {len(lines)} generated lines; first 30:")
    print("\n".join(lines[:30]))

    print("\n== (d) Application tab ==")
    run = engine.execute(compiled)
    print("aggregate computation timings:")
    for phase, seconds in run.timings.items():
        print(f"  {phase:<10} {seconds * 1e3:8.1f} ms")
    slowest = sorted(run.group_times.items(), key=lambda kv: -kv[1])[:5]
    print("slowest groups:")
    for group_name, seconds in slowest:
        print(f"  {group_name:<20} {seconds * 1e3:8.1f} ms")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.1)
