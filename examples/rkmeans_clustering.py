"""Rk-means clustering over Retailer (paper Sections 3 and 4).

Runs the four Rk-means steps (LMFAO computes the per-dimension histograms
and the grid-coreset weights), then reproduces the demo's Figure 4(d)
report: per-step timings, the cluster centroids, the closest centroid to a
probed point, the relative approximation versus ten runs of conventional
Lloyd's, and the relative coreset size.

Run:  python examples/rkmeans_clustering.py [scale] [k]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import retailer
from repro.ml import rk_means
from repro.ml.rkmeans import closest_centroid, evaluate_against_lloyds


def main(scale: float = 0.15, k: int = 5) -> None:
    db = retailer(scale=scale, seed=5)
    dimensions = ("inventoryunits", "maxtemp", "meanwind", "prize")
    print(
        f"Retailer scale={scale}: clustering {len(dimensions)} dimensions "
        f"into k={k} clusters ({db.total_tuples()} tuples)"
    )

    result = rk_means(db, dimensions=dimensions, k=k, seed=3)
    print(f"\nLMFAO queries used: {result.num_queries} (n dimensions + grid)")
    print("-- per-step time --")
    for step, seconds in result.step_seconds.items():
        print(f"  {step:<20} {seconds * 1e3:8.1f} ms")
    print("-- per-dimension time (step 2) --")
    for dim, seconds in result.per_dimension_seconds.items():
        print(f"  {dim:<20} {seconds * 1e3:8.1f} ms")

    print(f"\ngrid coreset: {result.coreset_size} weighted points")
    print("-- centroids --")
    header = "  ".join(f"{d:>16}" for d in dimensions)
    print(f"           {header}")
    for i, c in enumerate(result.centroids):
        cells = "  ".join(f"{v:16.2f}" for v in c)
        print(f"cluster {i}  {cells}")

    probe = result.centroids.mean(axis=0)
    nearest = closest_centroid(result, probe)
    print(f"\nprobe point {np.round(probe, 2).tolist()} -> closest cluster {nearest}")

    evaluation = evaluate_against_lloyds(db, result, lloyd_runs=10, seed=0)
    print(
        f"\nquality vs conventional Lloyd's (avg of {evaluation.lloyd_runs} runs, "
        f"{evaluation.lloyd_seconds:.2f}s):"
    )
    print(f"  intra-cluster distance (Rk-means): {evaluation.rk_inertia:.4g}")
    print(f"  intra-cluster distance (Lloyd's):  {evaluation.lloyd_inertia_mean:.4g}")
    print(f"  relative approximation:            {evaluation.relative_approximation:+.2%}")
    print(f"  relative coreset size:             {evaluation.coreset_ratio:.4%} of |D|")


if __name__ == "__main__":
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.15
    k = int(sys.argv[2]) if len(sys.argv) > 2 else 5
    main(scale, k)
