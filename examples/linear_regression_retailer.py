"""Ridge linear regression over the Retailer schema (paper Section 3).

Trains the model three ways and compares wall time and fit quality:

1. LMFAO: covariance batch through the engine, then BGD over Σ;
2. RDBMS-style baseline: every Σ-entry query joins independently;
3. ML-pipeline baseline: materialise the join, build the one-hot design
   matrix, solve with dense numpy (the scikit-learn-over-Pandas shape).

Run:  python examples/linear_regression_retailer.py [scale]
"""

from __future__ import annotations

import sys
import time

import numpy as np

from repro import LMFAO, MaterializedPipeline, SqlEngineBaseline, retailer
from repro.ml import assemble_sigma, covariance_batch, retailer_features
from repro.ml.linreg import encode_rows, train_linear_regression


def main(scale: float = 0.15) -> None:
    db = retailer(scale=scale, seed=7)
    spec = retailer_features(db)
    batch = covariance_batch(spec)
    print(
        f"Retailer scale={scale}: {db.total_tuples()} tuples, "
        f"{batch.num_aggregates} covariance aggregates ({len(batch)} queries)"
    )

    # ---- 1. LMFAO -----------------------------------------------------------
    engine = LMFAO(db)
    start = time.perf_counter()
    model = train_linear_regression(engine, spec, ridge=1e-2)
    lmfao_seconds = time.perf_counter() - start
    print(
        f"\nLMFAO:     aggregates {model.aggregate_seconds:.2f}s + "
        f"BGD {model.solve_seconds:.2f}s ({model.iterations} iterations) "
        f"-> objective {model.objective:.4f}"
    )

    # ---- 2. RDBMS-style: per-query joins ------------------------------------
    sql = SqlEngineBaseline(db)
    start = time.perf_counter()
    sql_results = sql.run(batch)
    sql_seconds = time.perf_counter() - start
    sigma_sql, _, _ = assemble_sigma(spec, sql_results)
    print(f"SQL-style: aggregates {sql_seconds:.2f}s (per-query joins)")

    # ---- 3. materialise + numpy ---------------------------------------------
    pipeline = MaterializedPipeline(db)
    start = time.perf_counter()
    join = pipeline.join
    rows = {a: join.column(a) for a in spec.all_attributes}
    x = encode_rows(model.index, rows)
    x[:, model.index.label_column] = join.column(spec.label)
    sigma_dense = x.T @ x
    dense_seconds = time.perf_counter() - start
    print(
        f"Dense:     materialise+encode+X^T X {dense_seconds:.2f}s "
        f"(join of {join.num_rows} rows, {x.shape[1]} one-hot columns)"
    )

    # ---- agreement and quality ----------------------------------------------
    sigma_engine, _, count, _, _ = __import__(
        "repro.ml.linreg", fromlist=["sigma_from_engine"]
    ).sigma_from_engine(engine, spec)
    print(
        f"\nSigma agreement: engine vs SQL {np.abs(sigma_engine - sigma_sql).max():.2e}, "
        f"engine vs dense {np.abs(sigma_engine - sigma_dense).max():.2e}"
    )
    predictions = model.predict_rows(rows)
    y = join.column(spec.label).astype(np.float64)
    rmse = float(np.sqrt(np.mean((predictions - y) ** 2)))
    print(f"Training RMSE: {rmse:.3f} (label std {y.std():.3f})")
    print(
        f"\nSpeedup of LMFAO aggregates over per-query SQL: "
        f"{sql_seconds / max(model.aggregate_seconds, 1e-9):.1f}x"
    )


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.15)
