"""Leaderboards: top-k-per-group aggregates as first-class batch outputs.

"Top 5 items by inventory in every location" is the canonical serving
query behind dashboards and recommendation panels. With ordered
emissions (``Query.order_by`` / ``limit``) LMFAO computes such
leaderboards inside the same shared-scan batch as ordinary aggregates:
the factorised engine materialises the full grouped result once, and
the finishing seam ranks + truncates it per partition with the kernel
(bounded heap vs full sort) the cost model picks from ``k`` and the
group count. The script also applies a delta that reshuffles one
location's leaderboard and shows the maintained handle tracking it.

Run:  python examples/leaderboard.py [scale]
"""

from __future__ import annotations

import sys
import time

import numpy as np

from repro import Aggregate, EngineConfig, LMFAO, Query, QueryBatch, retailer
from repro.query import OrderSpec


def leaderboard_batch(k: int = 5) -> QueryBatch:
    return QueryBatch(
        [
            Query(
                "top_items_per_location",
                group_by=("locn", "ksn"),
                aggregates=(
                    Aggregate.sum("inventoryunits"),
                    Aggregate.count(),
                ),
                order_by=OrderSpec(
                    agg_index=0, descending=True, partition_by=("locn",)
                ),
                limit=k,
            ),
            Query(
                "busiest_locations",
                group_by=("locn",),
                aggregates=(Aggregate.sum("inventoryunits"),),
                order_by=OrderSpec(agg_index=0, descending=True),
                limit=k,
            ),
            # an unordered query sharing the same scans and views
            Query(
                "inventory_by_zip",
                group_by=("zip",),
                aggregates=(Aggregate.sum("inventoryunits"),),
            ),
        ]
    )


def main(scale: float = 0.1) -> None:
    db = retailer(scale=scale, seed=7)
    batch = leaderboard_batch(k=5)
    engine = LMFAO(db, EngineConfig())

    start = time.perf_counter()
    run = engine.run(batch)
    seconds = time.perf_counter() - start
    topk = run["top_items_per_location"]
    strategies = {
        name: strategy
        for entry in run.decisions.values()
        for name, strategy in entry.get("topk", {}).items()
    }
    print(
        f"Leaderboard batch over retailer (scale={scale}): "
        f"{db.total_tuples()} tuples, {run.compiled.num_views} views, "
        f"{seconds:.2f}s; finishing kernels: {strategies}"
    )

    print("\nBusiest locations (top 5 by total inventory):")
    for key, values in run["busiest_locations"].ranked():
        print(f"  locn={key[0]:>4}  inventory={values[0]:>12.0f}")

    first_locn = next(iter(topk.groups))[0]
    print(f"\nTop items in locn={first_locn}:")
    for key, values in topk.topk(partition=(first_locn,)):
        print(f"  ksn={key[1]:>5}  inventory={values[0]:>10.0f}  rows={values[1]:.0f}")

    # ---- maintenance: a burst of stock for one item flips the board ------
    handle = engine.maintain(batch)
    challenger = topk.topk(partition=(first_locn,))[-1][0][1]
    boost = float(topk.topk(partition=(first_locn,))[0][1][0])
    handle.apply(
        inserts={
            "Inventory": {
                "locn": np.array([first_locn] * 3),
                "dateid": np.array([1, 2, 3]),
                "ksn": np.array([challenger] * 3),
                "inventoryunits": np.array([boost, boost, boost]),
            }
        }
    )
    refreshed = handle["top_items_per_location"]
    print(f"\nAfter restocking ksn={challenger}, top items in locn={first_locn}:")
    for key, values in refreshed.topk(partition=(first_locn,)):
        marker = "  <-- moved" if key[1] == challenger else ""
        print(
            f"  ksn={key[1]:>5}  inventory={values[0]:>10.0f}{marker}"
        )
    leader = refreshed.topk(partition=(first_locn,))[0][0][1]
    print(f"\nNew leader in locn={first_locn}: ksn={leader}")


if __name__ == "__main__":
    main(*(float(a) for a in sys.argv[1:]))
