"""A CUBE-style batch: every group-by subset, one shared pass structure.

Beyond the paper's three ML applications, any workload that issues many
group-by aggregates over the same join benefits from LMFAO — the classic
example is a data cube. This script builds the full CUBE over a set of
Favorita dimensions (all 2^n group-by subsets, each with SUM(1),
SUM(units), SUM(units*units)) and compares the engine against per-query
execution, printing the sharing statistics (views per edge, groups).

Run:  python examples/aggregate_cube.py [scale]
"""

from __future__ import annotations

import itertools
import sys
import time

from repro import Aggregate, EngineConfig, LMFAO, Query, QueryBatch, SqlEngineBaseline, favorita
from repro.inspect import render_join_tree
from repro.paper import FAVORITA_TREE
from repro.query.functions import square


def cube_batch(dimensions: tuple[str, ...]) -> QueryBatch:
    """All 2^n group-by subsets with the measure triple."""
    aggregates = (
        Aggregate.count(),
        Aggregate.sum("units"),
        Aggregate.sum("units", square),
    )
    queries = []
    for r in range(len(dimensions) + 1):
        for subset in itertools.combinations(dimensions, r):
            name = "cube_" + ("_".join(subset) if subset else "all")
            queries.append(Query(name, group_by=subset, aggregates=aggregates))
    return QueryBatch(queries)


def main(scale: float = 0.2) -> None:
    db = favorita(scale=scale, seed=8)
    dimensions = ("store", "family", "promo", "stype", "cluster")
    batch = cube_batch(dimensions)
    print(
        f"CUBE over {dimensions}: {len(batch)} group-by sets, "
        f"{batch.num_aggregates} aggregates, {db.total_tuples()} tuples"
    )

    engine = LMFAO(db, EngineConfig(join_tree_edges=FAVORITA_TREE))
    start = time.perf_counter()
    run = engine.run(batch)
    lmfao_seconds = time.perf_counter() - start
    compiled = run.compiled
    print(
        f"\nLMFAO: {lmfao_seconds:.2f}s — {compiled.num_views} merged views, "
        f"{compiled.num_groups} groups share the scans"
    )
    print(render_join_tree(engine.tree, compiled.view_plan))

    start = time.perf_counter()
    SqlEngineBaseline(db).run(batch)
    sql_seconds = time.perf_counter() - start
    print(f"\nper-query SQL baseline: {sql_seconds:.2f}s "
          f"({sql_seconds / lmfao_seconds:.1f}x slower)")

    # a couple of cube cells
    total = run.results["cube_all"].groups[()]
    print(f"\ncube(): count={total[0]:.0f} sum={total[1]:.0f}")
    by_promo = run.results["cube_promo"].groups
    for key in sorted(by_promo):
        count, units, _ = by_promo[key]
        print(f"cube(promo={key[0]}): count={count:.0f} avg_units={units / count:.2f}")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.2)
